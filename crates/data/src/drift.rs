//! Drifting-distribution stream families for online continual learning.
//!
//! A batch dataset is exchangeable — sample order carries no
//! information. An online learner's workload is not: deployed streams
//! drift (sensors age, speakers change, seasons turn), and the question
//! a continual learner answers is how fast its readout tracks the
//! moving class-conditional statistics. This module builds such streams
//! deterministically on top of any [`DatasetSpec`]: every (class,
//! channel) pair gets **two** prototypes — where the class starts and
//! where it ends up — and sample `k` of `n` is drawn from their
//! interpolation at a drift weight `w(k)` chosen by the [`DriftKind`].
//! At `w = 0` the stream is statistically identical to the stationary
//! [`generate`](crate::generate) family; as `w` grows the class means,
//! spectra and trends migrate while labels stay round-robin balanced.
//!
//! The online bench (`dfr-bench`) feeds these streams to the
//! exponentially-forgetting `OnlineRidge` learner: with forgetting the
//! published readout tracks the drift, without it the readout averages
//! incompatible regimes.

use crate::generator::{Prototype, AMP_JITTER, PHASE_JITTER};
use crate::rng::{randn, seeded_rng};
use crate::spec::DatasetSpec;
use crate::{DataError, Sample};
use dfr_linalg::Matrix;

/// How the class-conditional statistics move over the stream index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DriftKind {
    /// Linear morph from the start prototypes to the end prototypes over
    /// the whole stream (`w = k / (n − 1)`).
    Gradual,
    /// Stationary at the start statistics for the first half, then an
    /// instant switch to the end statistics — the concept-shift step
    /// that punishes any learner without forgetting.
    Abrupt,
    /// Drifts out to the end statistics by mid-stream and back
    /// (triangular `w`), so early and late samples agree but the middle
    /// regime differs — recurring context, the classic seasonal shape.
    Recurring,
}

impl DriftKind {
    /// Every family, in declaration order.
    pub const ALL: [DriftKind; 3] = [DriftKind::Gradual, DriftKind::Abrupt, DriftKind::Recurring];

    /// Stable lowercase name (CLI flags, result files).
    pub fn name(self) -> &'static str {
        match self {
            DriftKind::Gradual => "gradual",
            DriftKind::Abrupt => "abrupt",
            DriftKind::Recurring => "recurring",
        }
    }

    /// Parses a family name (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::UnknownDataset`] for unknown names.
    pub fn from_name(name: &str) -> Result<Self, DataError> {
        let lower = name.to_ascii_lowercase();
        Self::ALL
            .into_iter()
            .find(|d| d.name() == lower)
            .ok_or(DataError::UnknownDataset { name: lower })
    }

    /// The drift weight `w ∈ [0, 1]` of sample `idx` in a stream of
    /// `size` (a single-sample stream sits at the start statistics).
    pub fn weight(self, idx: usize, size: usize) -> f64 {
        if size <= 1 {
            return 0.0;
        }
        let progress = idx as f64 / (size - 1) as f64;
        match self {
            DriftKind::Gradual => progress,
            DriftKind::Abrupt => {
                if idx * 2 < size {
                    0.0
                } else {
                    1.0
                }
            }
            DriftKind::Recurring => 1.0 - (1.0 - 2.0 * progress).abs(),
        }
    }
}

impl std::fmt::Display for DriftKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generates an **ordered** stream of `size` labelled samples whose
/// class-conditional statistics drift per `kind`. Deterministic in
/// `(spec.name, seed, kind, size)`; labels are round-robin so every
/// prefix is as class-balanced as its length allows. The split sizes of
/// `spec` are ignored — a stream has no train/test split, the online
/// protocol is prequential (test on the next sample, then absorb it).
///
/// # Errors
///
/// Returns [`DataError::InvalidSpec`] if the spec has zero classes, zero
/// length or zero channels.
///
/// # Example
///
/// ```
/// use dfr_data::{drifting_stream, DatasetSpec, DriftKind};
///
/// # fn main() -> Result<(), dfr_data::DataError> {
/// let spec = DatasetSpec::new("drift-demo", 2, 32, 3, 0, 0, 0.3);
/// let stream = drifting_stream(&spec, DriftKind::Gradual, 0, 40)?;
/// assert_eq!(stream.len(), 40);
/// assert_eq!(stream[7].label, 7 % 2);
/// # Ok(())
/// # }
/// ```
pub fn drifting_stream(
    spec: &DatasetSpec,
    kind: DriftKind,
    seed: u64,
    size: usize,
) -> Result<Vec<Sample>, DataError> {
    if spec.num_classes == 0 {
        return Err(DataError::InvalidSpec {
            field: "num_classes",
        });
    }
    if spec.length == 0 {
        return Err(DataError::InvalidSpec { field: "length" });
    }
    if spec.channels == 0 {
        return Err(DataError::InvalidSpec { field: "channels" });
    }

    // The shared per-channel base signal is stationary; the drift lives
    // entirely in the class deviation prototypes, so it is genuinely
    // class-conditional (matching the stationary generator at w = 0).
    let mut base = Vec::with_capacity(spec.channels);
    for channel in 0..spec.channels {
        let mut rng = seeded_rng(spec.name, &[seed, 0xBA5E, channel as u64]);
        base.push(Prototype::draw(&mut rng));
    }
    // Start prototypes use the stationary generator's stream tag, so a
    // drift weight of zero reproduces its class structure; end
    // prototypes get their own tag.
    let mut start = Vec::with_capacity(spec.num_classes);
    let mut end = Vec::with_capacity(spec.num_classes);
    for class in 0..spec.num_classes {
        let mut from = Vec::with_capacity(spec.channels);
        let mut to = Vec::with_capacity(spec.channels);
        for channel in 0..spec.channels {
            let mut rng = seeded_rng(spec.name, &[seed, 0xC1A5, class as u64, channel as u64]);
            from.push(Prototype::draw(&mut rng));
            let mut rng = seeded_rng(spec.name, &[seed, 0xD41F, class as u64, channel as u64]);
            to.push(Prototype::draw(&mut rng));
        }
        start.push(from);
        end.push(to);
    }

    let mut samples = Vec::with_capacity(size);
    for idx in 0..size {
        let label = idx % spec.num_classes;
        let w = kind.weight(idx, size);
        let mut rng = seeded_rng(spec.name, &[seed, 0xD81F7, idx as u64]);
        let mut series = Matrix::zeros(spec.length, spec.channels);
        for channel in 0..spec.channels {
            let proto = start[label][channel].lerp(&end[label][channel], w);
            let phase_jitter = PHASE_JITTER * randn(&mut rng);
            let amp_scale = 1.0 + AMP_JITTER * randn(&mut rng);
            let mut ar = 0.0;
            for t in 0..spec.length {
                let tau = t as f64 / spec.length as f64;
                ar = spec.noise_ar * ar + spec.noise * randn(&mut rng);
                series[(t, channel)] = base[channel].eval(tau, phase_jitter, amp_scale)
                    + spec.class_sep * proto.eval(tau, phase_jitter, amp_scale)
                    + ar;
            }
        }
        samples.push(Sample::new(series, label));
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DatasetSpec {
        DatasetSpec::new("drift-test", 3, 30, 2, 0, 0, 0.05)
    }

    fn dist(a: &Matrix, b: &Matrix) -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn deterministic_and_balanced() {
        let a = drifting_stream(&spec(), DriftKind::Gradual, 5, 31).unwrap();
        let b = drifting_stream(&spec(), DriftKind::Gradual, 5, 31).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 31);
        for (i, s) in a.iter().enumerate() {
            assert_eq!(s.label, i % 3);
            assert_eq!(s.series.rows(), 30);
            assert_eq!(s.series.cols(), 2);
        }
    }

    #[test]
    fn weights_shape_the_drift() {
        for size in [2usize, 9, 10] {
            assert_eq!(DriftKind::Gradual.weight(0, size), 0.0);
            assert_eq!(DriftKind::Gradual.weight(size - 1, size), 1.0);
            assert_eq!(DriftKind::Abrupt.weight(0, size), 0.0);
            assert_eq!(DriftKind::Abrupt.weight(size - 1, size), 1.0);
            assert_eq!(DriftKind::Recurring.weight(0, size), 0.0);
            assert!(DriftKind::Recurring.weight(size - 1, size) < 1e-12);
        }
        // Abrupt switches exactly at the midpoint.
        assert_eq!(DriftKind::Abrupt.weight(4, 10), 0.0);
        assert_eq!(DriftKind::Abrupt.weight(5, 10), 1.0);
        // Recurring peaks mid-stream.
        assert!((DriftKind::Recurring.weight(5, 11) - 1.0).abs() < 1e-12);
        // Single-sample streams sit at the start statistics.
        assert_eq!(DriftKind::Gradual.weight(0, 1), 0.0);
    }

    #[test]
    fn class_statistics_actually_move() {
        // Low noise, strong separation: the same class early vs late must
        // differ far more than two neighbouring same-class samples.
        let quiet = DatasetSpec::new("drift-move", 2, 60, 1, 0, 0, 0.01);
        let n = 40;
        let stream = drifting_stream(&quiet, DriftKind::Gradual, 0, n).unwrap();
        let early = &stream[0]; // class 0, w ≈ 0
        let near = &stream[2]; // class 0, w ≈ 0.05
        let late = &stream[n - 2]; // class 0, w ≈ 0.95
        assert_eq!(early.label, late.label);
        let drifted = dist(&early.series, &late.series);
        let local = dist(&early.series, &near.series);
        assert!(
            drifted > 2.0 * local,
            "drifted {drifted} should dominate local spread {local}"
        );
    }

    /// Mean series of one class over a slice of the stream — averaging
    /// washes the per-sample phase/amplitude jitter out so prototype
    /// movement is visible above it.
    fn class_mean(stream: &[Sample], label: usize) -> Matrix {
        let picked: Vec<&Sample> = stream.iter().filter(|s| s.label == label).collect();
        let mut mean = Matrix::zeros(picked[0].series.rows(), picked[0].series.cols());
        for s in &picked {
            for (m, v) in mean.as_mut_slice().iter_mut().zip(s.series.as_slice()) {
                *m += v;
            }
        }
        for m in mean.as_mut_slice() {
            *m /= picked.len() as f64;
        }
        mean
    }

    #[test]
    fn abrupt_is_stationary_within_each_half() {
        let quiet = DatasetSpec::new("drift-abrupt", 2, 60, 1, 0, 0, 0.01).with_class_sep(2.0);
        let n = 80;
        let abrupt = drifting_stream(&quiet, DriftKind::Abrupt, 0, n).unwrap();
        let gradual = drifting_stream(&quiet, DriftKind::Gradual, 0, n).unwrap();
        // At w = 0 the two kinds share prototypes AND per-sample RNG
        // streams, so the very first sample is bitwise identical.
        assert_eq!(abrupt[0], gradual[0]);
        // Class-conditional means: the two quarters of the first half
        // agree (stationary regime, only jitter between them), while the
        // first and second halves disagree (the concept switch).
        let q1 = class_mean(&abrupt[..n / 4], 0);
        let q2 = class_mean(&abrupt[n / 4..n / 2], 0);
        let h1 = class_mean(&abrupt[..n / 2], 0);
        let h2 = class_mean(&abrupt[n / 2..], 0);
        let within = dist(&q1, &q2);
        let across = dist(&h1, &h2);
        assert!(
            across > 2.0 * within,
            "switch jump {across} should dominate stationary spread {within}"
        );
    }

    #[test]
    fn kinds_parse_and_display() {
        for kind in DriftKind::ALL {
            assert_eq!(DriftKind::from_name(kind.name()).unwrap(), kind);
            assert_eq!(kind.to_string(), kind.name());
            assert_eq!(
                DriftKind::from_name(&kind.name().to_uppercase()).unwrap(),
                kind
            );
        }
        assert!(matches!(
            DriftKind::from_name("sideways"),
            Err(DataError::UnknownDataset { .. })
        ));
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut s = spec();
        s.num_classes = 0;
        assert!(drifting_stream(&s, DriftKind::Gradual, 0, 4).is_err());
        let mut s = spec();
        s.length = 0;
        assert!(drifting_stream(&s, DriftKind::Gradual, 0, 4).is_err());
        let mut s = spec();
        s.channels = 0;
        assert!(drifting_stream(&s, DriftKind::Gradual, 0, 4).is_err());
        // Empty streams are fine — there is just nothing to drift.
        assert_eq!(
            drifting_stream(&spec(), DriftKind::Abrupt, 0, 0)
                .unwrap()
                .len(),
            0
        );
    }
}
