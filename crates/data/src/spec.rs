//! Specifications of the 12 paper datasets and their synthetic stand-ins.
//!
//! The class counts `N_y` and series lengths `T` below are **not guesses**:
//! the paper's Table 2 reports the naive/simplified storage counts, which are
//! affine in `(T, N_y)` for `N_x = 30`
//! (`naive = (T+1)·N_x + N_x(N_x+1) + N_y·(N_x(N_x+1)+1)`), so both values
//! can be solved for exactly per dataset. Channel counts come from the public
//! descriptions of the underlying UCI/UCR corpora. Train/test sizes are
//! scaled down from the originals to fit a single-core CI budget; the paper's
//! Table 1 reports runtime *ratios*, which survive uniform scaling.

use crate::generator::{generate, GeneratorOptions};
use crate::Dataset;

/// The 12 datasets of the paper's evaluation (Tables 1 and 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // variant names are the paper's dataset codes
pub enum PaperDataset {
    Arab,
    Aus,
    Char,
    Cmu,
    Ecg,
    Jpvow,
    Kick,
    Lib,
    Net,
    Uwav,
    Waf,
    Walk,
}

impl PaperDataset {
    /// All 12 datasets in the paper's (alphabetical) order.
    pub const ALL: [PaperDataset; 12] = [
        PaperDataset::Arab,
        PaperDataset::Aus,
        PaperDataset::Char,
        PaperDataset::Cmu,
        PaperDataset::Ecg,
        PaperDataset::Jpvow,
        PaperDataset::Kick,
        PaperDataset::Lib,
        PaperDataset::Net,
        PaperDataset::Uwav,
        PaperDataset::Waf,
        PaperDataset::Walk,
    ];

    /// The short code the paper uses (e.g. `"ARAB"`).
    pub fn code(self) -> &'static str {
        self.spec().name
    }

    /// Parses a paper dataset code (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`crate::DataError::UnknownDataset`] for unknown codes.
    pub fn from_code(code: &str) -> Result<Self, crate::DataError> {
        let upper = code.to_ascii_uppercase();
        Self::ALL
            .into_iter()
            .find(|d| d.code() == upper)
            .ok_or(crate::DataError::UnknownDataset { name: upper })
    }

    /// The dataset's specification (dimensions, sizes, difficulty).
    pub fn spec(self) -> DatasetSpec {
        match self {
            // name, classes, length T, channels, train, test, noise;
            // class_sep calibrated so the backpropagation accuracy lands
            // near the paper's Table 1 value for each dataset.
            PaperDataset::Arab => {
                DatasetSpec::new("ARAB", 10, 92, 13, 200, 100, 0.45).with_class_sep(0.70)
            }
            PaperDataset::Aus => {
                DatasetSpec::new("AUS", 95, 135, 22, 285, 190, 0.55).with_class_sep(0.50)
            }
            PaperDataset::Char => {
                DatasetSpec::new("CHAR", 20, 204, 3, 200, 100, 0.60).with_class_sep(1.00)
            }
            PaperDataset::Cmu => {
                DatasetSpec::new("CMU", 2, 579, 62, 40, 40, 0.80).with_class_sep(0.16)
            }
            PaperDataset::Ecg => {
                DatasetSpec::new("ECG", 2, 151, 2, 100, 100, 1.10).with_class_sep(0.60)
            }
            PaperDataset::Jpvow => {
                DatasetSpec::new("JPVOW", 9, 28, 12, 180, 90, 0.40).with_class_sep(0.75)
            }
            PaperDataset::Kick => {
                DatasetSpec::new("KICK", 2, 840, 62, 20, 20, 1.60).with_class_sep(0.30)
            }
            PaperDataset::Lib => {
                DatasetSpec::new("LIB", 15, 44, 2, 180, 90, 0.70).with_class_sep(1.00)
            }
            PaperDataset::Net => {
                DatasetSpec::new("NET", 13, 993, 4, 65, 65, 1.30).with_class_sep(0.55)
            }
            PaperDataset::Uwav => {
                DatasetSpec::new("UWAV", 8, 314, 3, 120, 80, 0.85).with_class_sep(1.00)
            }
            PaperDataset::Waf => {
                DatasetSpec::new("WAF", 2, 197, 6, 100, 100, 0.45).with_class_sep(0.30)
            }
            PaperDataset::Walk => {
                DatasetSpec::new("WALK", 2, 1917, 3, 20, 20, 0.25).with_class_sep(0.30)
            }
        }
    }
}

impl std::fmt::Display for PaperDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// Full specification of a synthetic dataset.
///
/// # Example
///
/// ```
/// use dfr_data::DatasetSpec;
///
/// let spec = DatasetSpec::new("toy", 3, 50, 2, 30, 30, 0.5);
/// let ds = spec.build(0);
/// assert_eq!(ds.num_classes(), 3);
/// assert_eq!(ds.train().len(), 30);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset code, also the seed namespace for generation.
    pub name: &'static str,
    /// Number of classes `N_y`.
    pub num_classes: usize,
    /// Series length `T`.
    pub length: usize,
    /// Number of input channels.
    pub channels: usize,
    /// Training-split size.
    pub train_size: usize,
    /// Test-split size.
    pub test_size: usize,
    /// Standard deviation of the AR(1) observation noise — the difficulty
    /// knob of the synthetic task.
    pub noise: f64,
    /// Scale of the class-specific deviation from the shared base signal
    /// (1.0 = classes as distinct as the base itself). Smaller values make
    /// classes harder to separate and the accuracy landscape more peaked —
    /// the knob controlling how many grid divisions a search needs.
    pub class_sep: f64,
    /// AR(1) coefficient of the observation noise (default 0.7). Values
    /// near 1 make the noise slowly varying, so classification accuracy
    /// depends strongly on the reservoir's temporal filtering — sharpening
    /// the `(A, B)` accuracy landscape.
    pub noise_ar: f64,
}

impl DatasetSpec {
    /// Creates a spec. Arguments follow the field order.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &'static str,
        num_classes: usize,
        length: usize,
        channels: usize,
        train_size: usize,
        test_size: usize,
        noise: f64,
    ) -> Self {
        DatasetSpec {
            name,
            num_classes,
            length,
            channels,
            train_size,
            test_size,
            noise,
            class_sep: 1.0,
            noise_ar: 0.7,
        }
    }

    /// Sets the noise AR(1) coefficient (builder style).
    pub fn with_noise_ar(mut self, noise_ar: f64) -> Self {
        self.noise_ar = noise_ar;
        self
    }

    /// Sets the class-separation scale (builder style).
    pub fn with_class_sep(mut self, class_sep: f64) -> Self {
        self.class_sep = class_sep;
        self
    }

    /// Generates the dataset with the given seed offset (0 = canonical).
    ///
    /// # Panics
    ///
    /// Panics if the spec has zero classes/length/channels (specs built via
    /// [`PaperDataset::spec`] are always valid).
    pub fn build(&self, seed: u64) -> Dataset {
        generate(self, &GeneratorOptions { seed }).expect("built-in specs are valid")
    }

    /// Scales both split sizes by `factor` (at least 1 sample per split),
    /// for quick smoke runs of the benchmark harness.
    pub fn scaled(mut self, factor: f64) -> Self {
        self.train_size = ((self.train_size as f64 * factor) as usize).max(self.num_classes);
        self.test_size = ((self.test_size as f64 * factor) as usize).max(self.num_classes);
        self
    }
}

/// Builds the canonical synthetic stand-in for a paper dataset (seed 0).
///
/// # Example
///
/// ```
/// use dfr_data::{paper_dataset, PaperDataset};
/// let ds = paper_dataset(PaperDataset::Ecg);
/// assert_eq!(ds.num_classes(), 2);
/// ```
pub fn paper_dataset(which: PaperDataset) -> Dataset {
    which.spec().build(0)
}

/// Builds a paper dataset with a custom seed (for seed-robustness studies).
pub fn paper_dataset_with(which: PaperDataset, seed: u64) -> Dataset {
    which.spec().build(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_match_table2_dimensions() {
        // (code, N_y, T) recovered from the paper's Table 2 — see DESIGN.md §5.
        let expected = [
            ("ARAB", 10, 92),
            ("AUS", 95, 135),
            ("CHAR", 20, 204),
            ("CMU", 2, 579),
            ("ECG", 2, 151),
            ("JPVOW", 9, 28),
            ("KICK", 2, 840),
            ("LIB", 15, 44),
            ("NET", 13, 993),
            ("UWAV", 8, 314),
            ("WAF", 2, 197),
            ("WALK", 2, 1917),
        ];
        for (ds, (code, ny, t)) in PaperDataset::ALL.iter().zip(expected) {
            let spec = ds.spec();
            assert_eq!(spec.name, code);
            assert_eq!(spec.num_classes, ny, "{code} classes");
            assert_eq!(spec.length, t, "{code} length");
        }
    }

    #[test]
    fn from_code_roundtrip() {
        for ds in PaperDataset::ALL {
            assert_eq!(PaperDataset::from_code(ds.code()).unwrap(), ds);
            assert_eq!(
                PaperDataset::from_code(&ds.code().to_lowercase()).unwrap(),
                ds
            );
        }
        assert!(PaperDataset::from_code("BOGUS").is_err());
    }

    #[test]
    fn display_matches_code() {
        assert_eq!(PaperDataset::Jpvow.to_string(), "JPVOW");
    }

    #[test]
    fn scaled_clamps_to_class_count() {
        let spec = PaperDataset::Aus.spec().scaled(0.01);
        assert_eq!(spec.train_size, 95);
        assert_eq!(spec.test_size, 95);
    }

    #[test]
    fn build_produces_declared_shape() {
        let ds = paper_dataset(PaperDataset::Lib);
        let spec = PaperDataset::Lib.spec();
        assert_eq!(ds.train().len(), spec.train_size);
        assert_eq!(ds.test().len(), spec.test_size);
        assert_eq!(ds.channels(), spec.channels);
        assert_eq!(ds.max_length(), spec.length);
    }

    #[test]
    fn different_seed_different_data() {
        let a = paper_dataset_with(PaperDataset::Jpvow, 0);
        let b = paper_dataset_with(PaperDataset::Jpvow, 1);
        assert_ne!(a.train()[0].series, b.train()[0].series);
    }

    #[test]
    fn same_seed_identical_data() {
        let a = paper_dataset_with(PaperDataset::Jpvow, 7);
        let b = paper_dataset_with(PaperDataset::Jpvow, 7);
        assert_eq!(a, b);
    }
}
