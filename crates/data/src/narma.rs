//! NARMA benchmark series for time-series *prediction* examples.
//!
//! NARMA-10 is the classic reservoir-computing prediction benchmark (used by
//! the original DFR paper of Appeltant et al.). It is not part of this
//! paper's classification evaluation, but the repository ships it as an
//! extension example showing the reservoir substrate on a prediction task.

use crate::rng::seeded_rng;
use rand::Rng;

/// A NARMA input/target pair: drive `u` and the system response `y`.
#[derive(Debug, Clone, PartialEq)]
pub struct NarmaSeries {
    /// Input drive, i.i.d. uniform on `[0, 0.5]`.
    pub input: Vec<f64>,
    /// NARMA system output aligned with `input` (same length).
    pub target: Vec<f64>,
}

impl NarmaSeries {
    /// Length of the series.
    pub fn len(&self) -> usize {
        self.input.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.input.is_empty()
    }
}

/// Generates a NARMA-`order` series of the given length.
///
/// The recurrence (for order `n`) is
/// `y(t+1) = 0.3 y(t) + 0.05 y(t) Σ_{i<n} y(t−i) + 1.5 u(t−n+1) u(t) + 0.1`,
/// with the first `order` outputs set to 0. The drive is uniform on
/// `[0, 0.5]`, the standard setting that keeps the system stable.
///
/// # Panics
///
/// Panics if `order == 0` or `length == 0`.
///
/// # Example
///
/// ```
/// let s = dfr_data::narma::narma(10, 500, 42);
/// assert_eq!(s.len(), 500);
/// assert!(s.target.iter().all(|y| y.is_finite()));
/// ```
pub fn narma(order: usize, length: usize, seed: u64) -> NarmaSeries {
    assert!(order > 0, "NARMA order must be positive");
    assert!(length > 0, "NARMA length must be positive");
    let mut rng = seeded_rng("narma", &[order as u64, seed]);
    let input: Vec<f64> = (0..length).map(|_| rng.gen_range(0.0..0.5)).collect();
    let mut target = vec![0.0; length];
    for t in order..length {
        let window: f64 = target[t - order..t].iter().sum();
        let y = 0.3 * target[t - 1]
            + 0.05 * target[t - 1] * window
            + 1.5 * input[t - order] * input[t - 1]
            + 0.1;
        // The classic NARMA-10 occasionally diverges for unlucky drives; the
        // standard fix is a saturating nonlinearity.
        target[t] = y.tanh();
    }
    NarmaSeries { input, target }
}

/// Normalised mean squared error, the standard NARMA metric:
/// `NMSE = Σ (y − ŷ)² / Σ (y − mean(y))²`.
///
/// # Panics
///
/// Panics if the slices differ in length or `target` has zero variance.
pub fn nmse(prediction: &[f64], target: &[f64]) -> f64 {
    assert_eq!(prediction.len(), target.len(), "nmse: length mismatch");
    let mean = dfr_linalg::stats::mean(target);
    let num: f64 = prediction
        .iter()
        .zip(target)
        .map(|(p, t)| (p - t) * (p - t))
        .sum();
    let den: f64 = target.iter().map(|t| (t - mean) * (t - mean)).sum();
    assert!(den > 0.0, "nmse: target has zero variance");
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_finite() {
        let a = narma(10, 1000, 1);
        let b = narma(10, 1000, 1);
        assert_eq!(a, b);
        assert!(a.target.iter().all(|y| y.is_finite()));
    }

    #[test]
    fn warmup_is_zero() {
        let s = narma(10, 50, 0);
        assert!(s.target[..10].iter().all(|&y| y == 0.0));
        assert!(s.target[10..].iter().any(|&y| y != 0.0));
    }

    #[test]
    fn input_range() {
        let s = narma(5, 200, 3);
        assert!(s.input.iter().all(|&u| (0.0..0.5).contains(&u)));
    }

    #[test]
    fn nmse_zero_for_perfect_prediction() {
        let s = narma(10, 200, 2);
        assert!(nmse(&s.target, &s.target) < 1e-30);
    }

    #[test]
    fn nmse_one_for_mean_prediction() {
        let s = narma(10, 200, 2);
        let mean = dfr_linalg::stats::mean(&s.target);
        let pred = vec![mean; s.len()];
        assert!((nmse(&pred, &s.target) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "order must be positive")]
    fn zero_order_panics() {
        narma(0, 10, 0);
    }
}
