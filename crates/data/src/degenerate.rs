//! Degenerate stream families: adversarially structured channels that
//! drive the readout's ridge system toward rank deficiency.
//!
//! Real sensor corpora contain dead channels (a stuck accelerometer axis),
//! duplicated channels (the same electrode wired twice) and channels whose
//! variance collapses to measurement noise. Each of those makes the raw
//! series matrix — and, through the (linear-`f`) reservoir, the readout's
//! Gram — exactly or nearly rank-deficient, which is precisely the regime
//! the solver escalation in `dfr-linalg` (`DESIGN.md` §15) exists for.
//! This module builds those families deterministically on top of any
//! [`DatasetSpec`], so the robustness path is exercised by the same sweep
//! harness as the healthy datasets.

use crate::generator::{generate, GeneratorOptions};
use crate::spec::DatasetSpec;
use crate::{DataError, Dataset, Sample};

/// The channel pathology applied on top of a healthy synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Degeneracy {
    /// Channel 0 of every sample is the constant `1.0`: together with the
    /// readout's intercept column this is an exact linear dependence.
    ConstantChannel,
    /// The last channel of every sample is a bitwise copy of channel 0
    /// (requires at least two channels).
    DuplicatedChannel,
    /// Channel 0 of every sample is compressed around its mean by `1e-9`,
    /// leaving a channel whose variance sits at the edge of `f64`
    /// resolution — numerically indistinguishable from constant.
    NearZeroVariance,
}

/// Compression factor of [`Degeneracy::NearZeroVariance`].
const VARIANCE_SQUEEZE: f64 = 1e-9;

impl Degeneracy {
    /// Every family, in declaration order.
    pub const ALL: [Degeneracy; 3] = [
        Degeneracy::ConstantChannel,
        Degeneracy::DuplicatedChannel,
        Degeneracy::NearZeroVariance,
    ];

    /// Stable lowercase name (CLI flags, result files).
    pub fn name(self) -> &'static str {
        match self {
            Degeneracy::ConstantChannel => "constant",
            Degeneracy::DuplicatedChannel => "duplicated",
            Degeneracy::NearZeroVariance => "nearzero",
        }
    }

    /// Parses a family name (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::UnknownDataset`] for unknown names.
    pub fn from_name(name: &str) -> Result<Self, DataError> {
        let lower = name.to_ascii_lowercase();
        Self::ALL
            .into_iter()
            .find(|d| d.name() == lower)
            .ok_or(DataError::UnknownDataset { name: lower })
    }
}

impl std::fmt::Display for Degeneracy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generates `spec` with the given seed, then applies `kind` to every
/// sample of both splits. Deterministic in `(spec.name, seed, kind)`.
///
/// # Errors
///
/// * [`DataError::InvalidSpec`] for the base spec's usual validity rules,
///   or if `kind` is [`Degeneracy::DuplicatedChannel`] and the spec has
///   fewer than two channels.
///
/// # Example
///
/// ```
/// use dfr_data::{degenerate_dataset, Degeneracy, DatasetSpec};
///
/// # fn main() -> Result<(), dfr_data::DataError> {
/// let spec = DatasetSpec::new("demo", 2, 32, 3, 8, 8, 0.5);
/// let ds = degenerate_dataset(&spec, Degeneracy::ConstantChannel, 0)?;
/// let s = &ds.train()[0].series;
/// assert!((0..s.rows()).all(|t| s[(t, 0)] == 1.0));
/// # Ok(())
/// # }
/// ```
pub fn degenerate_dataset(
    spec: &DatasetSpec,
    kind: Degeneracy,
    seed: u64,
) -> Result<Dataset, DataError> {
    if kind == Degeneracy::DuplicatedChannel && spec.channels < 2 {
        return Err(DataError::InvalidSpec { field: "channels" });
    }
    let mut ds = generate(spec, &GeneratorOptions { seed })?;
    for sample in ds.train_mut().iter_mut() {
        degrade(sample, kind);
    }
    for sample in ds.test_mut().iter_mut() {
        degrade(sample, kind);
    }
    Ok(ds)
}

fn degrade(sample: &mut Sample, kind: Degeneracy) {
    let (rows, cols) = (sample.series.rows(), sample.series.cols());
    match kind {
        Degeneracy::ConstantChannel => {
            for t in 0..rows {
                sample.series[(t, 0)] = 1.0;
            }
        }
        Degeneracy::DuplicatedChannel => {
            for t in 0..rows {
                sample.series[(t, cols - 1)] = sample.series[(t, 0)];
            }
        }
        Degeneracy::NearZeroVariance => {
            let mean =
                (0..rows).map(|t| sample.series[(t, 0)]).sum::<f64>() / (rows as f64).max(1.0);
            for t in 0..rows {
                let v = sample.series[(t, 0)];
                sample.series[(t, 0)] = mean + VARIANCE_SQUEEZE * (v - mean);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfr_linalg::cholesky::Cholesky;
    use dfr_linalg::Matrix;

    fn spec() -> DatasetSpec {
        DatasetSpec::new("degen-test", 2, 48, 3, 8, 6, 0.4)
    }

    fn channel(series: &Matrix, c: usize) -> Vec<f64> {
        (0..series.rows()).map(|t| series[(t, c)]).collect()
    }

    fn variance(xs: &[f64]) -> f64 {
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn constant_channel_is_constant_in_both_splits() {
        let ds = degenerate_dataset(&spec(), Degeneracy::ConstantChannel, 3).unwrap();
        for s in ds.train().iter().chain(ds.test()) {
            assert!(channel(&s.series, 0).iter().all(|&v| v == 1.0));
            // The other channels keep the healthy signal.
            assert!(variance(&channel(&s.series, 1)) > 1e-3);
        }
    }

    #[test]
    fn duplicated_channel_is_bitwise_copy() {
        let ds = degenerate_dataset(&spec(), Degeneracy::DuplicatedChannel, 3).unwrap();
        for s in ds.train().iter().chain(ds.test()) {
            let a = channel(&s.series, 0);
            let b = channel(&s.series, 2);
            assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }

    #[test]
    fn duplicated_needs_two_channels() {
        let narrow = DatasetSpec::new("degen-narrow", 2, 16, 1, 4, 4, 0.4);
        assert!(matches!(
            degenerate_dataset(&narrow, Degeneracy::DuplicatedChannel, 0),
            Err(DataError::InvalidSpec { field: "channels" })
        ));
        assert!(degenerate_dataset(&narrow, Degeneracy::ConstantChannel, 0).is_ok());
    }

    #[test]
    fn near_zero_variance_collapses_channel_zero_only() {
        let base = spec().build(3);
        let ds = degenerate_dataset(&spec(), Degeneracy::NearZeroVariance, 3).unwrap();
        for (s, b) in ds.train().iter().zip(base.train()) {
            let squeezed = variance(&channel(&s.series, 0));
            let healthy = variance(&channel(&b.series, 0));
            assert!(
                squeezed < 1e-15 * healthy.max(1.0),
                "variance {squeezed} not collapsed (healthy {healthy})"
            );
            assert_eq!(channel(&s.series, 1), channel(&b.series, 1));
        }
    }

    #[test]
    fn deterministic_in_seed_and_kind() {
        for kind in Degeneracy::ALL {
            let a = degenerate_dataset(&spec(), kind, 7).unwrap();
            let b = degenerate_dataset(&spec(), kind, 7).unwrap();
            assert_eq!(a, b);
        }
    }

    /// The reason this module exists: the channel-space Gram `XᵀX` of a
    /// degenerate series is exactly rank-deficient (constant/duplicated
    /// channels are linear dependences). In floating point that shows up
    /// either as a Cholesky rejection (non-positive pivot) or as an rcond
    /// below [`dfr_linalg::solver::RCOND_MIN`] — both are exactly the
    /// triggers of the `Auto` solver escalation.
    #[test]
    fn degenerate_grams_defeat_cholesky() {
        for kind in [Degeneracy::ConstantChannel, Degeneracy::DuplicatedChannel] {
            let ds = degenerate_dataset(&spec(), kind, 1).unwrap();
            let s = &ds.train()[0].series;
            // Augment with an intercept column so the constant channel
            // becomes an exact dependence too.
            let mut aug = Matrix::zeros(s.rows(), s.cols() + 1);
            for t in 0..s.rows() {
                aug[(t, 0)] = 1.0;
                for c in 0..s.cols() {
                    aug[(t, c + 1)] = s[(t, c)];
                }
            }
            let gram = aug.t_matmul(&aug).unwrap();
            match Cholesky::factor(&gram) {
                Err(_) => {} // rejected outright: escalation trigger 1
                Ok(chol) => {
                    // Rounding left a tiny positive pivot; the condition
                    // estimate must still flag it: escalation trigger 2.
                    let rcond = chol.rcond_1_est(gram.norm_1(), &mut Vec::new());
                    assert!(
                        rcond < dfr_linalg::solver::RCOND_MIN,
                        "{kind}: rcond {rcond} should be below the escalation threshold"
                    );
                }
            }
        }
    }

    #[test]
    fn names_round_trip() {
        for kind in Degeneracy::ALL {
            assert_eq!(Degeneracy::from_name(kind.name()).unwrap(), kind);
            assert_eq!(
                Degeneracy::from_name(&kind.name().to_uppercase()).unwrap(),
                kind
            );
        }
        assert!(Degeneracy::from_name("bogus").is_err());
    }
}
