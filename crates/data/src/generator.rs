//! Class-conditional synthetic time-series generation.
//!
//! Each class of a dataset gets a deterministic *prototype* per channel — a
//! mixture of a few harmonics plus a linear trend — drawn once from a
//! seeded RNG. Individual samples are noisy realisations of their class
//! prototype: phase and amplitude jitter plus AR(1) observation noise whose
//! standard deviation is the dataset's difficulty knob. This mirrors the
//! structure of the real corpora (quasi-periodic sensor/speech traces with
//! per-trial variability) while staying fully reproducible.

use crate::dataset::{Dataset, Sample};
use crate::rng::{randn, seeded_rng};
use crate::spec::DatasetSpec;
use crate::DataError;
use dfr_linalg::Matrix;
use rand::Rng;
use std::f64::consts::TAU;

/// Number of harmonic components per class prototype.
const HARMONICS: usize = 3;
/// Standard deviation of the per-sample phase jitter (radians).
pub(crate) const PHASE_JITTER: f64 = 0.25;
/// Standard deviation of the per-sample relative amplitude jitter.
pub(crate) const AMP_JITTER: f64 = 0.12;

/// Options controlling dataset generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct GeneratorOptions {
    /// Seed offset mixed into every RNG; `0` is the canonical dataset.
    pub seed: u64,
}

/// One harmonic component of a class prototype.
#[derive(Debug, Clone, Copy)]
struct Harmonic {
    /// Frequency in cycles over the whole series.
    freq: f64,
    /// Amplitude.
    amp: f64,
    /// Phase offset in radians.
    phase: f64,
}

/// The deterministic prototype of one (class, channel) pair.
#[derive(Debug, Clone)]
pub(crate) struct Prototype {
    harmonics: [Harmonic; HARMONICS],
    /// Linear trend slope over the normalised time axis.
    trend: f64,
    /// Constant offset.
    offset: f64,
}

impl Prototype {
    pub(crate) fn draw<R: Rng>(rng: &mut R) -> Self {
        let mut harmonics = [Harmonic {
            freq: 0.0,
            amp: 0.0,
            phase: 0.0,
        }; HARMONICS];
        for h in &mut harmonics {
            h.freq = rng.gen_range(0.8..7.0);
            h.amp = rng.gen_range(0.4..1.4);
            h.phase = rng.gen_range(0.0..TAU);
        }
        Prototype {
            harmonics,
            trend: rng.gen_range(-0.8..0.8),
            offset: rng.gen_range(-0.5..0.5),
        }
    }

    /// Element-wise linear interpolation toward `other` at weight
    /// `w ∈ [0, 1]` — the continuous morph the drifting stream family
    /// (`crate::drift`) rides: every harmonic's frequency, amplitude and
    /// phase plus the trend and offset move together, so the class-
    /// conditional statistics shift smoothly with `w`.
    pub(crate) fn lerp(&self, other: &Prototype, w: f64) -> Prototype {
        let mix = |a: f64, b: f64| a + w * (b - a);
        let mut harmonics = self.harmonics;
        for (h, o) in harmonics.iter_mut().zip(&other.harmonics) {
            h.freq = mix(h.freq, o.freq);
            h.amp = mix(h.amp, o.amp);
            h.phase = mix(h.phase, o.phase);
        }
        Prototype {
            harmonics,
            trend: mix(self.trend, other.trend),
            offset: mix(self.offset, other.offset),
        }
    }

    /// Evaluates the prototype at normalised time `tau ∈ [0, 1)` with the
    /// given per-sample jitters.
    pub(crate) fn eval(&self, tau: f64, phase_jitter: f64, amp_scale: f64) -> f64 {
        let mut v = self.offset + self.trend * tau;
        for h in &self.harmonics {
            v += amp_scale * h.amp * (TAU * h.freq * tau + h.phase + phase_jitter).sin();
        }
        v
    }
}

/// Generates a synthetic dataset from a spec.
///
/// Generation is deterministic in `(spec.name, options.seed)`; the train and
/// test splits use disjoint RNG streams. Labels are assigned round-robin so
/// every class is as balanced as the split size allows.
///
/// # Errors
///
/// Returns [`DataError::InvalidSpec`] if the spec has zero classes, zero
/// length or zero channels.
///
/// # Example
///
/// ```
/// use dfr_data::{generate, DatasetSpec, GeneratorOptions};
///
/// # fn main() -> Result<(), dfr_data::DataError> {
/// let spec = DatasetSpec::new("demo", 2, 64, 3, 10, 10, 0.5);
/// let ds = generate(&spec, &GeneratorOptions { seed: 0 })?;
/// assert_eq!(ds.train().len(), 10);
/// assert_eq!(ds.train()[0].channels(), 3);
/// # Ok(())
/// # }
/// ```
pub fn generate(spec: &DatasetSpec, options: &GeneratorOptions) -> Result<Dataset, DataError> {
    if spec.num_classes == 0 {
        return Err(DataError::InvalidSpec {
            field: "num_classes",
        });
    }
    if spec.length == 0 {
        return Err(DataError::InvalidSpec { field: "length" });
    }
    if spec.channels == 0 {
        return Err(DataError::InvalidSpec { field: "channels" });
    }

    // Class prototypes: one RNG stream per (class, channel), independent of
    // split sizes so resizing splits never changes the class structure.
    // Every class shares a channel-specific base signal; the class identity
    // lives in a deviation prototype scaled by `class_sep`.
    let mut base = Vec::with_capacity(spec.channels);
    for channel in 0..spec.channels {
        let mut rng = seeded_rng(spec.name, &[options.seed, 0xBA5E, channel as u64]);
        base.push(Prototype::draw(&mut rng));
    }
    let mut prototypes = Vec::with_capacity(spec.num_classes);
    for class in 0..spec.num_classes {
        let mut per_channel = Vec::with_capacity(spec.channels);
        for channel in 0..spec.channels {
            let mut rng = seeded_rng(
                spec.name,
                &[options.seed, 0xC1A5, class as u64, channel as u64],
            );
            per_channel.push(Prototype::draw(&mut rng));
        }
        prototypes.push(per_channel);
    }

    let train = make_split(spec, options.seed, &base, &prototypes, 0, spec.train_size);
    let test = make_split(spec, options.seed, &base, &prototypes, 1, spec.test_size);
    Dataset::new(spec.name, spec.num_classes, train, test)
}

fn make_split(
    spec: &DatasetSpec,
    seed: u64,
    base: &[Prototype],
    prototypes: &[Vec<Prototype>],
    split_id: u64,
    size: usize,
) -> Vec<Sample> {
    let mut samples = Vec::with_capacity(size);
    for idx in 0..size {
        let label = idx % spec.num_classes;
        let mut rng = seeded_rng(spec.name, &[seed, 0x5A4D, split_id, idx as u64]);
        let mut series = Matrix::zeros(spec.length, spec.channels);
        for channel in 0..spec.channels {
            let proto = &prototypes[label][channel];
            let phase_jitter = PHASE_JITTER * randn(&mut rng);
            let amp_scale = 1.0 + AMP_JITTER * randn(&mut rng);
            let mut ar = 0.0;
            for t in 0..spec.length {
                let tau = t as f64 / spec.length as f64;
                ar = spec.noise_ar * ar + spec.noise * randn(&mut rng);
                series[(t, channel)] = base[channel].eval(tau, phase_jitter, amp_scale)
                    + spec.class_sep * proto.eval(tau, phase_jitter, amp_scale)
                    + ar;
            }
        }
        samples.push(Sample::new(series, label));
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DatasetSpec {
        DatasetSpec::new("gen-test", 3, 40, 2, 12, 9, 0.3)
    }

    #[test]
    fn shapes_and_balance() {
        let ds = generate(&spec(), &GeneratorOptions::default()).unwrap();
        assert_eq!(ds.train().len(), 12);
        assert_eq!(ds.test().len(), 9);
        // Round-robin labels → perfectly balanced train split.
        let mut counts = [0usize; 3];
        for s in ds.train() {
            counts[s.label] += 1;
        }
        assert_eq!(counts, [4, 4, 4]);
    }

    #[test]
    fn deterministic() {
        let a = generate(&spec(), &GeneratorOptions { seed: 5 }).unwrap();
        let b = generate(&spec(), &GeneratorOptions { seed: 5 }).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn split_streams_are_disjoint() {
        let ds = generate(&spec(), &GeneratorOptions::default()).unwrap();
        // Train sample 0 and test sample 0 share a label (round-robin) but
        // must differ in content.
        assert_eq!(ds.train()[0].label, ds.test()[0].label);
        assert_ne!(ds.train()[0].series, ds.test()[0].series);
    }

    #[test]
    fn classes_are_separated() {
        // Prototypes of different classes should differ far more than two
        // samples of the same class — otherwise the task is unlearnable.
        let quiet = DatasetSpec::new("gen-sep", 2, 100, 1, 4, 0, 0.01);
        let ds = generate(&quiet, &GeneratorOptions::default()).unwrap();
        let dist = |a: &Matrix, b: &Matrix| -> f64 {
            a.as_slice()
                .iter()
                .zip(b.as_slice())
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        // train[0], train[2] are class 0; train[1], train[3] are class 1.
        let within = dist(&ds.train()[0].series, &ds.train()[2].series);
        let between = dist(&ds.train()[0].series, &ds.train()[1].series);
        assert!(
            between > 2.0 * within,
            "between {between} should exceed within {within}"
        );
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut s = spec();
        s.num_classes = 0;
        assert!(generate(&s, &GeneratorOptions::default()).is_err());
        let mut s = spec();
        s.length = 0;
        assert!(generate(&s, &GeneratorOptions::default()).is_err());
        let mut s = spec();
        s.channels = 0;
        assert!(generate(&s, &GeneratorOptions::default()).is_err());
    }

    #[test]
    fn noise_knob_changes_dispersion() {
        let quiet = DatasetSpec::new("gen-noise", 2, 50, 1, 6, 0, 0.01);
        let loud = DatasetSpec::new("gen-noise", 2, 50, 1, 6, 0, 2.0);
        let a = generate(&quiet, &GeneratorOptions::default()).unwrap();
        let b = generate(&loud, &GeneratorOptions::default()).unwrap();
        // Same prototypes (same name/seed), so the loud version differs from
        // the quiet one only by noise; compare same-class sample distances.
        let dist = |ds: &Dataset| {
            ds.train()[0]
                .series
                .as_slice()
                .iter()
                .zip(ds.train()[2].series.as_slice())
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
        };
        assert!(dist(&b) > dist(&a));
    }
}
