//! Deterministic seed derivation.
//!
//! Every random quantity in the reproduction (dataset prototypes, sample
//! jitter, reservoir masks) is derived from string/context seeds via FNV-1a
//! so that runs are bit-reproducible across machines and independent of
//! iteration order.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// FNV-1a 64-bit hash of a byte string.
///
/// # Example
///
/// ```
/// let h = dfr_data::rng::fnv1a("ARAB");
/// assert_eq!(h, dfr_data::rng::fnv1a("ARAB"));
/// assert_ne!(h, dfr_data::rng::fnv1a("AUS"));
/// ```
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Combines a base seed with a sequence of context values into a new seed.
///
/// Uses the splitmix64 finalizer so nearby inputs give unrelated outputs.
pub fn derive_seed(base: u64, context: &[u64]) -> u64 {
    let mut z = base;
    for &c in context {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15).wrapping_add(c);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
    }
    z
}

/// A [`StdRng`] seeded from a string and a context tuple.
///
/// # Example
///
/// ```
/// use rand::Rng;
/// let mut a = dfr_data::rng::seeded_rng("CHAR", &[0, 7]);
/// let mut b = dfr_data::rng::seeded_rng("CHAR", &[0, 7]);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(name: &str, context: &[u64]) -> StdRng {
    StdRng::seed_from_u64(derive_seed(fnv1a(name), context))
}

/// Draws a standard-normal sample via the Box–Muller transform.
///
/// `rand` 0.8 without `rand_distr` has no normal distribution; this is the
/// classic two-uniform construction (one of the pair is discarded for
/// simplicity — generation speed is irrelevant here).
pub fn randn<R: rand::Rng>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the open interval.
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > 0.0 {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn fnv_differs_for_different_strings() {
        assert_ne!(fnv1a("a"), fnv1a("b"));
        assert_ne!(fnv1a(""), fnv1a("a"));
    }

    #[test]
    fn derive_seed_depends_on_every_context_element() {
        let base = fnv1a("x");
        assert_ne!(derive_seed(base, &[1, 2]), derive_seed(base, &[1, 3]));
        assert_ne!(derive_seed(base, &[1, 2]), derive_seed(base, &[2, 1]));
        assert_ne!(derive_seed(base, &[1]), derive_seed(base, &[1, 0]));
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng("ds", &[3]);
        let mut b = seeded_rng("ds", &[3]);
        for _ in 0..10 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn different_context_different_stream() {
        let mut a = seeded_rng("ds", &[0]);
        let mut b = seeded_rng("ds", &[1]);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn randn_moments() {
        let mut rng = seeded_rng("randn", &[]);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| randn(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
