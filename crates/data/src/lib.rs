//! Synthetic multivariate time-series classification datasets for the DFR
//! reproduction.
//!
//! The paper evaluates on 12 `.npz` datasets from Bianchi et al. (ARAB, AUS,
//! CHAR, CMU, ECG, JPVOW, KICK, LIB, NET, UWAV, WAF, WALK). Those files are
//! not redistributable here, so this crate builds *synthetic stand-ins* with
//! the **same number of classes and series length** as the paper (both
//! recovered exactly from the storage counts of the paper's Table 2 — see
//! `DESIGN.md` §5) and channel counts from the public dataset descriptions.
//! Each class is a deterministic mixture of harmonic components with
//! class-conditional AR noise, so the tasks are genuinely learnable and the
//! optimizer-behaviour comparisons of the paper (backpropagation vs grid
//! search) exercise the same code paths.
//!
//! # Example
//!
//! ```
//! use dfr_data::{paper_dataset, PaperDataset};
//!
//! let ds = paper_dataset(PaperDataset::Jpvow);
//! assert_eq!(ds.num_classes(), 9);
//! assert_eq!(ds.train()[0].series.rows(), 28); // T recovered from Table 2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod degenerate;
mod drift;
mod error;
pub mod generator;
pub mod narma;
pub mod normalize;
pub mod rng;
mod spec;

pub use dataset::{Dataset, Sample};
pub use degenerate::{degenerate_dataset, Degeneracy};
pub use drift::{drifting_stream, DriftKind};
pub use error::DataError;
pub use generator::{generate, GeneratorOptions};
pub use spec::{paper_dataset, paper_dataset_with, DatasetSpec, PaperDataset};
