use std::error::Error;
use std::fmt;

/// Errors produced by dataset construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DataError {
    /// A sample's label was at least the declared class count.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// The declared number of classes.
        num_classes: usize,
    },
    /// A dataset parameter was zero or otherwise unusable.
    InvalidSpec {
        /// Which field was invalid.
        field: &'static str,
    },
    /// Samples in one dataset had differing channel counts.
    ChannelMismatch {
        /// Channel count of the first sample.
        expected: usize,
        /// Channel count of the offending sample.
        found: usize,
    },
    /// An unknown dataset name was requested.
    UnknownDataset {
        /// The requested name.
        name: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::LabelOutOfRange { label, num_classes } => {
                write!(f, "label {label} out of range for {num_classes} classes")
            }
            DataError::InvalidSpec { field } => write!(f, "invalid dataset spec: {field}"),
            DataError::ChannelMismatch { expected, found } => {
                write!(f, "channel mismatch: expected {expected}, found {found}")
            }
            DataError::UnknownDataset { name } => write!(f, "unknown dataset: {name}"),
        }
    }
}

impl Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(
            DataError::LabelOutOfRange {
                label: 5,
                num_classes: 3
            }
            .to_string(),
            "label 5 out of range for 3 classes"
        );
        assert_eq!(
            DataError::InvalidSpec { field: "length" }.to_string(),
            "invalid dataset spec: length"
        );
        assert_eq!(
            DataError::ChannelMismatch {
                expected: 3,
                found: 2
            }
            .to_string(),
            "channel mismatch: expected 3, found 2"
        );
        assert_eq!(
            DataError::UnknownDataset {
                name: "NOPE".into()
            }
            .to_string(),
            "unknown dataset: NOPE"
        );
    }
}
