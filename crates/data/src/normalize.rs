//! Per-channel standardisation fit on the training split.
//!
//! The DFR's masked input `j(k) = M·u(k)` is sensitive to input scale (the
//! reservoir gain `A` multiplies it), so inputs are standardised per channel
//! using statistics of the *training* split only — the test split is
//! transformed with the same parameters, as in any leak-free pipeline.

use crate::Dataset;
use dfr_linalg::stats;

/// Per-channel affine normalisation parameters.
///
/// # Example
///
/// ```
/// use dfr_data::{normalize::Standardizer, DatasetSpec};
///
/// let mut ds = DatasetSpec::new("norm-demo", 2, 30, 2, 10, 10, 0.5).build(0);
/// let st = Standardizer::fit(&ds);
/// st.apply(&mut ds);
/// // Training data is now ≈ zero-mean per channel.
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits per-channel mean and standard deviation on the training split.
    ///
    /// Channels with near-zero variance get `std = 1` so they are only
    /// centred, never blown up.
    pub fn fit(ds: &Dataset) -> Self {
        let channels = ds.channels();
        let mut means = vec![0.0; channels];
        let mut stds = vec![1.0; channels];
        for c in 0..channels {
            let values: Vec<f64> = ds
                .train()
                .iter()
                .flat_map(|s| (0..s.len()).map(move |t| s.series[(t, c)]))
                .collect();
            means[c] = stats::mean(&values);
            let sd = stats::std_dev(&values);
            stds[c] = if sd < 1e-12 { 1.0 } else { sd };
        }
        Standardizer { means, stds }
    }

    /// Channel means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Channel standard deviations (1.0 for constant channels).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Applies the transform to both splits in place.
    ///
    /// # Panics
    ///
    /// Panics if the dataset's channel count differs from the fitted one.
    pub fn apply(&self, ds: &mut Dataset) {
        assert_eq!(
            ds.channels(),
            self.means.len(),
            "standardizer fitted on a different channel count"
        );
        self.apply_split(ds.train_mut());
        self.apply_split(ds.test_mut());
    }

    fn apply_split(&self, split: &mut [crate::Sample]) {
        for s in split {
            for t in 0..s.series.rows() {
                for c in 0..s.series.cols() {
                    s.series[(t, c)] = (s.series[(t, c)] - self.means[c]) / self.stds[c];
                }
            }
        }
    }
}

/// Fits on the training split and applies to both splits in one call.
///
/// Returns the fitted parameters for later reuse (e.g. deployment).
pub fn standardize(ds: &mut Dataset) -> Standardizer {
    let st = Standardizer::fit(ds);
    st.apply(ds);
    st
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetSpec;

    fn dataset() -> Dataset {
        DatasetSpec::new("norm-test", 2, 25, 3, 8, 8, 0.4).build(0)
    }

    #[test]
    fn train_split_is_standardized() {
        let mut ds = dataset();
        standardize(&mut ds);
        for c in 0..ds.channels() {
            let values: Vec<f64> = ds
                .train()
                .iter()
                .flat_map(|s| (0..s.len()).map(move |t| s.series[(t, c)]))
                .collect();
            assert!(stats::mean(&values).abs() < 1e-10, "channel {c} mean");
            assert!(
                (stats::std_dev(&values) - 1.0).abs() < 1e-10,
                "channel {c} std"
            );
        }
    }

    #[test]
    fn test_split_uses_train_statistics() {
        let mut ds = dataset();
        let before = ds.test()[0].series.clone();
        let st = standardize(&mut ds);
        let after = &ds.test()[0].series;
        // Test data transformed with train stats — verify the affine map.
        for t in 0..before.rows() {
            for c in 0..before.cols() {
                let expected = (before[(t, c)] - st.means()[c]) / st.stds()[c];
                assert!((after[(t, c)] - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn idempotent_up_to_refit() {
        let mut ds = dataset();
        standardize(&mut ds);
        let snapshot = ds.clone();
        // Refit on already-standardised data: means ≈ 0, stds ≈ 1, so a
        // second application changes nothing.
        standardize(&mut ds);
        for (a, b) in ds.train().iter().zip(snapshot.train()) {
            for (x, y) in a.series.as_slice().iter().zip(b.series.as_slice()) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn constant_channel_only_centred() {
        use crate::Sample;
        use dfr_linalg::Matrix;
        let mk = |label| Sample::new(Matrix::filled(5, 1, 7.0), label);
        let mut ds = Dataset::new("const", 2, vec![mk(0), mk(1)], vec![mk(0)]).unwrap();
        standardize(&mut ds);
        for s in ds.train() {
            assert!(s.series.as_slice().iter().all(|&x| x.abs() < 1e-12));
        }
    }
}
