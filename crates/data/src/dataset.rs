use crate::DataError;
use dfr_linalg::Matrix;

/// One labelled multivariate time series.
///
/// `series` is a `T x C` matrix: row `t` holds the `C` channel values of the
/// input `u(t)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The time series, one time step per row.
    pub series: Matrix,
    /// Class label in `0..num_classes`.
    pub label: usize,
}

impl Sample {
    /// Creates a sample from a `T x C` series and a label.
    pub fn new(series: Matrix, label: usize) -> Self {
        Sample { series, label }
    }

    /// Series length `T`.
    pub fn len(&self) -> usize {
        self.series.rows()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.series.rows() == 0
    }

    /// Number of input channels `C`.
    pub fn channels(&self) -> usize {
        self.series.cols()
    }
}

/// A classification dataset with train and test splits.
///
/// # Example
///
/// ```
/// use dfr_data::{Dataset, Sample};
/// use dfr_linalg::Matrix;
///
/// # fn main() -> Result<(), dfr_data::DataError> {
/// let mk = |label| Sample::new(Matrix::filled(10, 2, label as f64), label);
/// let ds = Dataset::new("toy", 2, vec![mk(0), mk(1)], vec![mk(0)])?;
/// assert_eq!(ds.train().len(), 2);
/// assert_eq!(ds.one_hot_train()[(1, 1)], 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    name: String,
    num_classes: usize,
    train: Vec<Sample>,
    test: Vec<Sample>,
}

impl Dataset {
    /// Creates a dataset, validating labels and channel consistency.
    ///
    /// # Errors
    ///
    /// * [`DataError::InvalidSpec`] if `num_classes == 0`.
    /// * [`DataError::LabelOutOfRange`] if any label `>= num_classes`.
    /// * [`DataError::ChannelMismatch`] if samples disagree on channel count.
    pub fn new(
        name: impl Into<String>,
        num_classes: usize,
        train: Vec<Sample>,
        test: Vec<Sample>,
    ) -> Result<Self, DataError> {
        if num_classes == 0 {
            return Err(DataError::InvalidSpec {
                field: "num_classes",
            });
        }
        let channels = train.first().or_else(|| test.first()).map(Sample::channels);
        for s in train.iter().chain(&test) {
            if s.label >= num_classes {
                return Err(DataError::LabelOutOfRange {
                    label: s.label,
                    num_classes,
                });
            }
            if let Some(c) = channels {
                if s.channels() != c {
                    return Err(DataError::ChannelMismatch {
                        expected: c,
                        found: s.channels(),
                    });
                }
            }
        }
        Ok(Dataset {
            name: name.into(),
            num_classes,
            train,
            test,
        })
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of classes `N_y`.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of input channels, or 0 if the dataset has no samples.
    pub fn channels(&self) -> usize {
        self.train
            .first()
            .or_else(|| self.test.first())
            .map_or(0, Sample::channels)
    }

    /// Maximum series length over both splits.
    pub fn max_length(&self) -> usize {
        self.train
            .iter()
            .chain(&self.test)
            .map(Sample::len)
            .max()
            .unwrap_or(0)
    }

    /// Training samples.
    pub fn train(&self) -> &[Sample] {
        &self.train
    }

    /// Test samples.
    pub fn test(&self) -> &[Sample] {
        &self.test
    }

    /// Mutable training samples (used by normalisation).
    pub fn train_mut(&mut self) -> &mut [Sample] {
        &mut self.train
    }

    /// Mutable test samples (used by normalisation).
    pub fn test_mut(&mut self) -> &mut [Sample] {
        &mut self.test
    }

    /// One-hot target matrix for the training split (`n x num_classes`).
    pub fn one_hot_train(&self) -> Matrix {
        one_hot(&self.train, self.num_classes)
    }

    /// One-hot target matrix for the test split (`n x num_classes`).
    pub fn one_hot_test(&self) -> Matrix {
        one_hot(&self.test, self.num_classes)
    }

    /// Fraction of the most frequent class in the test split — the accuracy
    /// a majority-class predictor achieves. Useful as a sanity baseline.
    pub fn majority_baseline(&self) -> f64 {
        if self.test.is_empty() {
            return 0.0;
        }
        let mut counts = vec![0usize; self.num_classes];
        for s in &self.test {
            counts[s.label] += 1;
        }
        counts.into_iter().max().unwrap_or(0) as f64 / self.test.len() as f64
    }
}

fn one_hot(samples: &[Sample], num_classes: usize) -> Matrix {
    let mut m = Matrix::zeros(samples.len(), num_classes);
    for (i, s) in samples.iter().enumerate() {
        m[(i, s.label)] = 1.0;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(label: usize, t: usize, c: usize) -> Sample {
        Sample::new(Matrix::filled(t, c, label as f64), label)
    }

    #[test]
    fn new_validates_labels() {
        let err = Dataset::new("d", 2, vec![mk(2, 4, 1)], vec![]).unwrap_err();
        assert!(matches!(err, DataError::LabelOutOfRange { label: 2, .. }));
    }

    #[test]
    fn new_validates_channels() {
        let err = Dataset::new("d", 2, vec![mk(0, 4, 1), mk(1, 4, 2)], vec![]).unwrap_err();
        assert!(matches!(err, DataError::ChannelMismatch { .. }));
    }

    #[test]
    fn new_rejects_zero_classes() {
        let err = Dataset::new("d", 0, vec![], vec![]).unwrap_err();
        assert!(matches!(err, DataError::InvalidSpec { .. }));
    }

    #[test]
    fn accessors() {
        let ds = Dataset::new("d", 3, vec![mk(0, 5, 2), mk(2, 7, 2)], vec![mk(1, 6, 2)]).unwrap();
        assert_eq!(ds.name(), "d");
        assert_eq!(ds.num_classes(), 3);
        assert_eq!(ds.channels(), 2);
        assert_eq!(ds.max_length(), 7);
        assert_eq!(ds.train().len(), 2);
        assert_eq!(ds.test().len(), 1);
    }

    #[test]
    fn one_hot_rows() {
        let ds = Dataset::new("d", 3, vec![mk(0, 2, 1), mk(2, 2, 1)], vec![]).unwrap();
        let y = ds.one_hot_train();
        assert_eq!(y.shape(), (2, 3));
        assert_eq!(y.row(0), &[1.0, 0.0, 0.0]);
        assert_eq!(y.row(1), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn majority_baseline_counts_test_split() {
        let ds = Dataset::new("d", 2, vec![], vec![mk(0, 2, 1), mk(0, 2, 1), mk(1, 2, 1)]).unwrap();
        assert!((ds.majority_baseline() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sample_accessors() {
        let s = mk(1, 4, 3);
        assert_eq!(s.len(), 4);
        assert_eq!(s.channels(), 3);
        assert!(!s.is_empty());
    }
}
