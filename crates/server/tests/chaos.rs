//! Chaos suite: the serving stack under deterministic, seeded fault
//! injection — torn reads, slow-drip writes, mid-frame disconnects,
//! scheduled panics in the batcher — plus racing hot-swaps and the
//! crash-safe model store.
//!
//! The contract being soaked is the repo's core one: **every accepted
//! request is answered bitwise-identical to a direct in-process
//! `predict`, or rejected with a typed status** — under any injected
//! fault, with no hang (a watchdog hard-exits past the deadline) and no
//! leaked connection threads (the `active_connections` gauge must drain
//! to zero).
//!
//! Set `DFR_CHAOS_STATS=/path/out.json` to dump the aggregate soak
//! counters (CI uploads them as an artifact).

use dfr_core::DfrClassifier;
use dfr_linalg::Matrix;
use dfr_serve::{FrozenModel, ServeSession};
use dfr_server::{
    Client, FaultPlan, FaultSpec, ModelRegistry, RetryPolicy, Server, ServerConfig, ServerError,
    Status, INJECTED_PANIC,
};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Once};
use std::time::{Duration, Instant};

/// Injected panics unwind through the batcher by design; without this
/// filter every one of them spams the default hook's backtrace banner
/// over the test output. Real (non-injected) panics still print.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains(INJECTED_PANIC))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.contains(INJECTED_PANIC))
                })
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    });
}

fn model(tweak: f64, seed: u64) -> DfrClassifier {
    let mut m = DfrClassifier::paper_default(6, 2, 3, seed).unwrap();
    m.reservoir_mut().set_params(0.06, 0.15).unwrap();
    for j in 0..m.feature_dim() {
        for k in 0..3 {
            m.w_out_mut()[(k, j)] = tweak * (((j * 5 + k * 3 + 1) % 17) as f64 - 8.0);
        }
    }
    m
}

fn series_for(i: usize) -> Matrix {
    let t = 2 + (i * 7) % 19;
    Matrix::from_vec(
        t,
        2,
        (0..t * 2)
            .map(|k| (((k * 11 + i * 13) % 31) as f64 * 0.21 - 3.0).sin())
            .collect(),
    )
    .unwrap()
}

/// `series_for(i)` with one element poisoned — NaN or ±Inf by index, at
/// an index-dependent position so the scan is exercised at every depth.
fn poisoned_series_for(i: usize) -> Matrix {
    let mut s = series_for(i);
    let poison = match i % 3 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        _ => f64::NEG_INFINITY,
    };
    let row = i % s.rows();
    s[(row, i % 2)] = poison;
    s
}

/// A model's expected (class, probability bits) per series.
type Oracle = Vec<(usize, Vec<u64>)>;

/// (class, probability bits) per series through a direct in-process
/// session — the ground truth every network `Ok` must equal, keyed by
/// the digest the response claims served it.
fn oracle(frozen: &FrozenModel, series: &[Matrix]) -> Oracle {
    let mut session = ServeSession::builder(frozen.clone()).build();
    let result = session.predict_batch(series).unwrap();
    (0..series.len())
        .map(|i| {
            (
                result.predictions()[i],
                result
                    .probabilities_of(i)
                    .iter()
                    .map(|p| p.to_bits())
                    .collect(),
            )
        })
        .collect()
}

fn start(frozen: FrozenModel, config: ServerConfig) -> Server {
    let registry = Arc::new(ModelRegistry::new(frozen));
    Server::bind("127.0.0.1:0", registry, config).unwrap()
}

/// Arms a hard deadline for the calling test: if the returned guard is
/// still alive when the deadline passes, the whole process exits — a
/// hang is a failure, never a stuck CI job.
struct Watchdog {
    _disarm: mpsc::Sender<()>,
}

fn watchdog(label: &'static str, deadline: Duration) -> Watchdog {
    let (tx, rx) = mpsc::channel::<()>();
    std::thread::spawn(move || {
        // Dropping the guard disconnects the channel and disarms; only a
        // genuine timeout (the test still running) aborts the process.
        if let Err(mpsc::RecvTimeoutError::Timeout) = rx.recv_timeout(deadline) {
            eprintln!("watchdog: {label} exceeded {deadline:?} — aborting");
            std::process::exit(101);
        }
    });
    Watchdog { _disarm: tx }
}

/// With every batch serve scheduled to panic (`panic_batch = 1.0`) and
/// per-sample serving clean, the fallback path must still answer every
/// request bitwise-correctly — a batcher panic is invisible to clients
/// except in the counters.
#[test]
fn batch_panics_fall_back_to_bitwise_correct_per_sample_service() {
    quiet_injected_panics();
    let _wd = watchdog("batch panic fallback", Duration::from_secs(60));
    let frozen = model_frozen(0.02, 17);
    let series: Vec<Matrix> = (0..12).map(series_for).collect();
    let expected = oracle(&frozen, &series);
    let mut server = start(
        frozen,
        ServerConfig {
            batch_deadline: Duration::from_millis(1),
            faults: FaultPlan::seeded(
                7,
                FaultSpec {
                    panic_batch: 1.0,
                    ..FaultSpec::quiet()
                },
            ),
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .set_io_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for (i, s) in series.iter().enumerate() {
        let got = client.predict(s).unwrap();
        assert_eq!(got.class, expected[i].0, "series {i} class");
        let bits: Vec<u64> = got.probabilities.iter().map(|p| p.to_bits()).collect();
        assert_eq!(bits, expected[i].1, "series {i} probabilities");
    }
    let stats = server.stats();
    assert!(
        stats.panics_caught >= series.len() as u64,
        "every batch serve panicked and must be counted: {stats:?}"
    );
    assert_eq!(stats.served, series.len() as u64);
    assert_eq!(stats.quarantined, 0);
    server.shutdown();
}

/// With batch *and* per-sample serves scheduled to panic, every request
/// is quarantined with the typed `Internal` status — and the server
/// survives to answer the next connection.
#[test]
fn sample_panics_are_quarantined_with_typed_internal_rejections() {
    quiet_injected_panics();
    let _wd = watchdog("sample quarantine", Duration::from_secs(60));
    let frozen = model_frozen(0.02, 17);
    let series: Vec<Matrix> = (0..8).map(series_for).collect();
    let mut server = start(
        frozen,
        ServerConfig {
            batch_deadline: Duration::from_millis(1),
            faults: FaultPlan::seeded(
                11,
                FaultSpec {
                    panic_batch: 1.0,
                    panic_sample: 1.0,
                    ..FaultSpec::quiet()
                },
            ),
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .set_io_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for s in &series {
        match client.predict(s) {
            Err(ServerError::Rejected {
                status: Status::Internal,
                ..
            }) => {}
            other => panic!("poisoned sample must be a typed Internal rejection, got {other:?}"),
        }
    }
    let stats = server.stats();
    assert_eq!(stats.quarantined, series.len() as u64, "{stats:?}");
    assert_eq!(stats.served, 0);
    // Every request cost one batch-level panic plus one sample-level
    // panic; coalescing can only merge batches, never drop a sample.
    assert!(stats.panics_caught > series.len() as u64, "{stats:?}");
    // The batcher is still alive: a fresh connection still gets answers
    // (typed ones, under this all-panic plan).
    let mut second = Client::connect(server.local_addr()).unwrap();
    second
        .set_io_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    assert!(matches!(
        second.predict(&series[0]),
        Err(ServerError::Rejected {
            status: Status::Internal,
            ..
        })
    ));
    server.shutdown();
}

/// Torn reads, delayed reads and slow-drip writes on every single
/// syscall must never change a byte — only latency. The strongest
/// deterministic form of the bit-identity-under-faults contract.
#[test]
fn torn_and_slow_io_preserves_bit_identity() {
    quiet_injected_panics();
    let _wd = watchdog("torn io", Duration::from_secs(120));
    let frozen = model_frozen(0.03, 23);
    let series: Vec<Matrix> = (0..6).map(series_for).collect();
    let expected = oracle(&frozen, &series);
    let mut server = start(
        frozen,
        ServerConfig {
            batch_deadline: Duration::from_millis(1),
            idle_timeout: Duration::from_secs(20),
            faults: FaultPlan::seeded(
                3,
                FaultSpec {
                    torn_read: 1.0,
                    slow_write: 1.0,
                    read_delay: 0.5,
                    read_delay_us: 100,
                    write_delay_us: 50,
                    ..FaultSpec::quiet()
                },
            ),
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .set_io_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    for (i, s) in series.iter().enumerate() {
        let got = client.predict(s).unwrap();
        assert_eq!(got.class, expected[i].0, "series {i} class");
        let bits: Vec<u64> = got.probabilities.iter().map(|p| p.to_bits()).collect();
        assert_eq!(bits, expected[i].1, "series {i} probabilities");
    }
    let stats = server.stats();
    assert_eq!(stats.served, series.len() as u64);
    assert_eq!(
        stats.malformed + stats.frames_truncated + stats.frames_oversized,
        0
    );
    server.shutdown();
}

/// The non-finite quarantine (`DESIGN.md` §15): poisoned payloads
/// (NaN/±Inf features) are rejected with the typed `BadInput` status
/// *before* admission — exactly one count per poisoned request, nothing
/// admitted, nothing quarantined — and the interleaved clean traffic on
/// the same connection still serves bitwise-identically.
#[test]
fn poisoned_payloads_are_rejected_before_admission() {
    quiet_injected_panics();
    let _wd = watchdog("bad input", Duration::from_secs(60));
    let frozen = model_frozen(0.02, 17);
    let series: Vec<Matrix> = (0..6).map(series_for).collect();
    let expected = oracle(&frozen, &series);
    let mut server = start(frozen, ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .set_io_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for (i, s) in series.iter().enumerate() {
        // Poison first, clean second: the rejection must not disturb the
        // connection or the clean request right behind it.
        match client.predict(&poisoned_series_for(i)) {
            Err(ServerError::Rejected {
                status: Status::BadInput,
                ..
            }) => {}
            other => panic!("poisoned payload must be a typed BadInput, got {other:?}"),
        }
        let got = client.predict(s).unwrap();
        assert_eq!(got.class, expected[i].0, "series {i} class");
        let bits: Vec<u64> = got.probabilities.iter().map(|p| p.to_bits()).collect();
        assert_eq!(bits, expected[i].1, "series {i} probabilities");
    }
    let stats = server.stats();
    assert_eq!(
        stats.bad_input,
        series.len() as u64,
        "exactly one count per poisoned request: {stats:?}"
    );
    assert_eq!(stats.served, series.len() as u64);
    // Pre-admission: the poisoned requests never touched the ledger.
    assert_eq!(stats.admitted, stats.served, "{stats:?}");
    assert_eq!(stats.admitted, stats.answered(), "{stats:?}");
    assert_eq!(stats.quarantined, 0, "{stats:?}");
    server.shutdown();
}

/// The idle reaper: a slow-loris connection (two bytes, then silence)
/// is disconnected at the idle timeout instead of pinning a reader
/// thread forever, and the reap is counted.
#[test]
fn slow_loris_connections_are_reaped() {
    quiet_injected_panics();
    let _wd = watchdog("slow loris", Duration::from_secs(60));
    let frozen = model_frozen(0.02, 17);
    let idle = Duration::from_millis(150);
    let mut server = start(
        frozen,
        ServerConfig {
            idle_timeout: idle,
            ..ServerConfig::default()
        },
    );
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.set_read_timeout(Some(8 * idle)).unwrap();
    // Two bytes of a length prefix, then nothing: a classic slow loris.
    raw.write_all(&[0x10, 0x00]).unwrap();
    let start_t = Instant::now();
    let mut sink = [0u8; 16];
    // The server must close the socket (EOF or reset) within a few
    // timeout periods — not leave us readable-blocked forever.
    let closed = loop {
        match raw.read(&mut sink) {
            Ok(0) => break true,
            Ok(_) => continue,
            Err(_) => break start_t.elapsed() <= 8 * idle,
        }
    };
    assert!(closed, "slow-loris connection was not reaped");
    // The counters see it (poll: the connection thread finishes just
    // after the socket close we observed).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = server.stats();
        if stats.timeouts >= 1 && stats.reaped >= 1 && stats.active_connections == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "reap not counted: {stats:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

/// persist → kill → reload: the store round-trips every model crash-
/// safely, restores the active head digest-verified, and a server
/// rebuilt from the reloaded registry answers bitwise identically.
#[test]
fn model_store_survives_kill_and_reload_bitwise() {
    quiet_injected_panics();
    let _wd = watchdog("model store", Duration::from_secs(60));
    let frozen_a = model_frozen(0.02, 17);
    let frozen_b = model_frozen(0.05, 29);
    let (da, db) = (frozen_a.content_digest(), frozen_b.content_digest());
    let series: Vec<Matrix> = (0..8).map(series_for).collect();
    let expected_b = oracle(&frozen_b, &series);

    let dir = std::env::temp_dir().join(format!("dfr-chaos-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // "Crash" mid-flight: persist while a server is live, then drop the
    // whole process state (server + registry) without any further
    // cooperation from it.
    {
        let registry = Arc::new(ModelRegistry::new(frozen_a));
        let mut server = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig::default(),
        )
        .unwrap();
        registry.publish(frozen_b);
        let report = registry.persist_to(&dir).unwrap();
        assert_eq!(report.active, db);
        assert_eq!(report.digests.len(), 2);
        server.shutdown();
    }

    let (loaded, report) = ModelRegistry::load_from(&dir).unwrap();
    assert_eq!(report.active, db, "active head must be restored");
    assert!(!report.active_fallback);
    assert!(report.skipped.is_empty());
    assert!(loaded.contains(da) && loaded.contains(db));

    let mut server =
        Server::bind("127.0.0.1:0", Arc::new(loaded), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .set_io_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for (i, s) in series.iter().enumerate() {
        let got = client.predict(s).unwrap();
        assert_eq!(got.digest, db, "restored active model must serve");
        assert_eq!(got.class, expected_b[i].0);
        let bits: Vec<u64> = got.probabilities.iter().map(|p| p.to_bits()).collect();
        assert_eq!(bits, expected_b[i].1, "series {i} bitwise after reload");
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

fn model_frozen(tweak: f64, seed: u64) -> FrozenModel {
    FrozenModel::freeze(&model(tweak, seed))
}

/// The continual-learning soak: a live [`OnlinePublisher`] absorbs
/// labelled traffic and hot-swap-publishes refrozen models into the
/// serving registry *while* retrying clients stream through the full
/// chaos fault plan. Published digests are not knowable up front, so
/// every `Ok` response is verified against a lazily built per-digest
/// oracle: the frozen model the registry holds under that digest,
/// served in-process. The ledger must balance, connections must drain,
/// and the publisher must actually have published.
#[test]
fn chaos_soak_with_live_online_publisher() {
    quiet_injected_panics();
    let _wd = watchdog("publisher soak", Duration::from_secs(240));
    const SEEDS: [u64; 3] = [1, 7, 21];
    const CLIENTS: usize = 2;
    const REQUESTS_PER_CLIENT: usize = 30;

    let frozen_seed = model_frozen(0.02, 17);
    let series: Arc<Vec<Matrix>> = Arc::new((0..24).map(series_for).collect());

    for seed in SEEDS {
        let registry = Arc::new(ModelRegistry::new(frozen_seed.clone()));
        let mut server = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig {
                queue_capacity: 32,
                max_batch: 8,
                batch_deadline: Duration::from_millis(1),
                idle_timeout: Duration::from_millis(500),
                faults: FaultPlan::seeded(seed, FaultSpec::chaos()),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();

        // The publisher thread: absorb labelled series, refit, refreeze,
        // publish — continuously, racing the live traffic below.
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let publisher_handle = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut publisher = dfr_server::OnlinePublisher::new(
                    model(0.0, 17),
                    1e-4,
                    registry,
                    dfr_server::PublisherConfig {
                        publish_every: 8,
                        min_interval: Duration::from_millis(2),
                    },
                )
                .expect("valid publisher config");
                let mut k = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    publisher
                        .absorb(&series_for(k), k % 3)
                        .expect("clean series absorb");
                    publisher.maybe_publish().expect("publish must not fail");
                    k += 1;
                }
                publisher.published()
            })
        };

        // Per-digest oracles, built lazily: a response may name any model
        // the publisher has frozen by then — all of them stay resolvable
        // in the registry, which is exactly what makes verification
        // possible.
        let oracles: Arc<std::sync::Mutex<HashMap<u64, Oracle>>> =
            Arc::new(std::sync::Mutex::new(HashMap::new()));

        let ok_count = Arc::new(AtomicU64::new(0));
        let workers: Vec<_> = (0..CLIENTS)
            .map(|w| {
                let series = Arc::clone(&series);
                let oracles = Arc::clone(&oracles);
                let registry = Arc::clone(&registry);
                let ok_count = Arc::clone(&ok_count);
                std::thread::spawn(move || {
                    let connect = || {
                        let mut c = Client::connect(addr).expect("connect");
                        c.set_io_timeout(Some(Duration::from_secs(5))).unwrap();
                        c
                    };
                    let mut client = connect();
                    let policy = RetryPolicy {
                        max_attempts: 6,
                        seed: seed ^ ((w as u64) << 32),
                        ..RetryPolicy::default()
                    };
                    let mut transport_failures = 0u32;
                    for r in 0..REQUESTS_PER_CLIENT {
                        let i = (w * 17 + r) % series.len();
                        loop {
                            match client.call_with_retry(&series[i], 0, &policy) {
                                Ok((got, _retries)) => {
                                    let mut map = oracles.lock().unwrap();
                                    let expected = map.entry(got.digest).or_insert_with(|| {
                                        let frozen =
                                            registry.get(got.digest).unwrap_or_else(|| {
                                                panic!(
                                                    "served digest {:#x} not in registry",
                                                    got.digest
                                                )
                                            });
                                        oracle(&frozen, &series)
                                    });
                                    let (class, bits) = &expected[i];
                                    assert_eq!(got.class, *class, "client {w} series {i}");
                                    let got_bits: Vec<u64> =
                                        got.probabilities.iter().map(|p| p.to_bits()).collect();
                                    assert_eq!(
                                        &got_bits, bits,
                                        "client {w} series {i}: served answer diverged from \
                                         the published model it claims"
                                    );
                                    ok_count.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                Err(ServerError::Rejected { .. }) => break,
                                Err(_) => {
                                    transport_failures += 1;
                                    assert!(
                                        transport_failures < 500,
                                        "client {w} cannot make progress through the fault plan"
                                    );
                                    client = connect();
                                }
                            }
                        }
                    }
                })
            })
            .collect();

        for wkr in workers {
            wkr.join().expect("soak client");
        }
        stop.store(true, Ordering::Relaxed);
        let published = publisher_handle.join().expect("publisher thread");
        server.shutdown();

        // The publisher must genuinely have raced the traffic, and the
        // swapped-in models must be live: at least one publish happened
        // and the registry's head moved off the seed model.
        assert!(published > 0, "seed {seed}: publisher never published");
        assert_ne!(
            registry.active_digest(),
            frozen_seed.content_digest(),
            "seed {seed}: active model never hot-swapped"
        );

        // No leaked connection threads, and a balanced ledger — same
        // drain discipline as the capstone soak.
        let deadline = Instant::now() + Duration::from_secs(10);
        let stats = loop {
            let stats = server.stats();
            if stats.active_connections == 0 {
                break stats;
            }
            assert!(
                Instant::now() < deadline,
                "seed {seed}: leaked connections: {stats:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        };
        assert_eq!(
            stats.admitted,
            stats.answered(),
            "seed {seed}: admitted requests must all be answered: {stats:?}"
        );
        assert!(
            ok_count.load(Ordering::Relaxed) <= stats.served,
            "seed {seed}: more Ok responses than serves"
        );
    }
}

/// Aggregate counters across all soak seeds, for the stats artifact and
/// the cross-seed assertions.
#[derive(Debug, Default)]
struct SoakTotals {
    requests_ok: u64,
    requests_rejected: u64,
    reconnects: u64,
    served: u64,
    panics_caught: u64,
    quarantined: u64,
    timeouts: u64,
    io_errors: u64,
    frames_truncated: u64,
    busy_retries: u64,
    batches: u64,
    bad_input: u64,
    poison_rejected: u64,
}

/// The capstone soak: for each fixed seed, a loopback server under the
/// full chaos fault plan × 3 concurrent retrying clients × a poisoned-
/// payload client × a racing hot-swap thread. Every `Ok` response is
/// verified bitwise against the direct-predict oracle of the model its
/// digest names; every failure must be a typed rejection or a transport
/// error (reconnect and carry on); every poisoned request must come back
/// as a typed `BadInput` and be counted outside the admission ledger;
/// afterwards the ledger must balance and every connection thread must
/// be gone.
#[test]
fn chaos_soak_across_seeds() {
    quiet_injected_panics();
    let _wd = watchdog("chaos soak", Duration::from_secs(240));
    const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];
    const CLIENTS: usize = 3;
    const REQUESTS_PER_CLIENT: usize = 40;
    const POISON_REQUESTS: usize = 12;

    let frozen_a = model_frozen(0.02, 17);
    let frozen_b = model_frozen(0.05, 29);
    let (da, db) = (frozen_a.content_digest(), frozen_b.content_digest());
    assert_ne!(da, db);
    let series: Arc<Vec<Matrix>> = Arc::new((0..24).map(series_for).collect());
    let oracles: Arc<HashMap<u64, Oracle>> = Arc::new(HashMap::from([
        (da, oracle(&frozen_a, &series)),
        (db, oracle(&frozen_b, &series)),
    ]));

    let mut totals = SoakTotals::default();
    for seed in SEEDS {
        let registry = Arc::new(ModelRegistry::new(frozen_a.clone()));
        let mut server = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig {
                queue_capacity: 32,
                max_batch: 8,
                batch_deadline: Duration::from_millis(1),
                idle_timeout: Duration::from_millis(500),
                faults: FaultPlan::seeded(seed, FaultSpec::chaos()),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();

        // Hot-swaps racing the traffic: the active model flips A↔B while
        // every client streams. Both stay registered, so every response
        // digest has an oracle.
        let swapper = {
            let registry = Arc::clone(&registry);
            let frozen_b = frozen_b.clone();
            std::thread::spawn(move || {
                for round in 0..12 {
                    std::thread::sleep(Duration::from_millis(2));
                    if round % 2 == 0 {
                        registry.publish(frozen_b.clone());
                    } else {
                        registry.activate(da).unwrap();
                    }
                }
            })
        };

        let ok_count = Arc::new(AtomicU64::new(0));
        let rejected_count = Arc::new(AtomicU64::new(0));
        let reconnect_count = Arc::new(AtomicU64::new(0));
        let busy_retry_count = Arc::new(AtomicU64::new(0));
        let workers: Vec<_> = (0..CLIENTS)
            .map(|w| {
                let series = Arc::clone(&series);
                let oracles = Arc::clone(&oracles);
                let ok_count = Arc::clone(&ok_count);
                let rejected_count = Arc::clone(&rejected_count);
                let reconnect_count = Arc::clone(&reconnect_count);
                let busy_retry_count = Arc::clone(&busy_retry_count);
                std::thread::spawn(move || {
                    let connect = || {
                        let mut c = Client::connect(addr).expect("connect");
                        c.set_io_timeout(Some(Duration::from_secs(5))).unwrap();
                        c
                    };
                    let mut client = connect();
                    let policy = RetryPolicy {
                        max_attempts: 6,
                        seed: seed ^ ((w as u64) << 32),
                        ..RetryPolicy::default()
                    };
                    let mut transport_failures = 0u32;
                    for r in 0..REQUESTS_PER_CLIENT {
                        let i = (w * 17 + r) % series.len();
                        loop {
                            match client.call_with_retry(&series[i], 0, &policy) {
                                Ok((got, retries)) => {
                                    busy_retry_count
                                        .fetch_add(u64::from(retries), Ordering::Relaxed);
                                    let (class, bits) =
                                        &oracles.get(&got.digest).unwrap_or_else(|| {
                                            panic!("unknown serving digest {:#x}", got.digest)
                                        })[i];
                                    assert_eq!(got.class, *class, "client {w} series {i}");
                                    let got_bits: Vec<u64> =
                                        got.probabilities.iter().map(|p| p.to_bits()).collect();
                                    assert_eq!(
                                        &got_bits, bits,
                                        "client {w} series {i}: bit-identity violated under faults"
                                    );
                                    ok_count.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                Err(ServerError::Rejected { .. }) => {
                                    // Typed rejection (Busy exhausted,
                                    // Internal quarantine, …): the
                                    // contract is satisfied — a clear
                                    // answer, not silence or garbage.
                                    rejected_count.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                Err(_) => {
                                    // Transport fault (injected torn
                                    // frame, disconnect, timeout):
                                    // reconnect and retry this request.
                                    transport_failures += 1;
                                    assert!(
                                        transport_failures < 500,
                                        "client {w} cannot make progress through the fault plan"
                                    );
                                    reconnect_count.fetch_add(1, Ordering::Relaxed);
                                    client = connect();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        // The poisoner: every request carries a NaN/±Inf feature. Under
        // the same fault plan a response can be lost in transport, so it
        // reconnects and retries like the clean clients — but the only
        // acceptable *answer* is a typed `BadInput`, never a prediction.
        let poison_rejected = Arc::new(AtomicU64::new(0));
        let poison_reconnects = Arc::new(AtomicU64::new(0));
        let poisoner = {
            let poison_rejected = Arc::clone(&poison_rejected);
            let poison_reconnects = Arc::clone(&poison_reconnects);
            std::thread::spawn(move || {
                let connect = || {
                    let mut c = Client::connect(addr).expect("connect");
                    c.set_io_timeout(Some(Duration::from_secs(5))).unwrap();
                    c
                };
                let mut client = connect();
                let mut transport_failures = 0u32;
                for r in 0..POISON_REQUESTS {
                    let s = poisoned_series_for(r);
                    loop {
                        match client.predict(&s) {
                            Err(ServerError::Rejected {
                                status: Status::BadInput,
                                ..
                            }) => {
                                poison_rejected.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Ok(got) => panic!("poisoned request {r} was served: {got:?}"),
                            Err(ServerError::Rejected { status, .. }) => {
                                panic!("poisoned request {r} got {status}, want bad input")
                            }
                            Err(_) => {
                                transport_failures += 1;
                                assert!(
                                    transport_failures < 500,
                                    "poison client cannot make progress through the fault plan"
                                );
                                poison_reconnects.fetch_add(1, Ordering::Relaxed);
                                client = connect();
                            }
                        }
                    }
                }
            })
        };

        for wkr in workers {
            wkr.join().expect("soak client");
        }
        poisoner.join().expect("poison client");
        swapper.join().unwrap();
        server.shutdown();

        // No leaked connection threads: the gauge must drain to zero
        // (reader threads exit at the idle timeout at the latest).
        let deadline = Instant::now() + Duration::from_secs(10);
        let stats = loop {
            let stats = server.stats();
            if stats.active_connections == 0 {
                break stats;
            }
            assert!(
                Instant::now() < deadline,
                "seed {seed}: leaked connections: {stats:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        };

        // The admission ledger balances: everything admitted was
        // answered with exactly one terminal response.
        assert_eq!(
            stats.admitted,
            stats.answered(),
            "seed {seed}: admitted requests must all be answered: {stats:?}"
        );
        // And the client-observed Ok count can only exceed the server's
        // served count if a response was fabricated — never.
        assert!(
            ok_count.load(Ordering::Relaxed) <= stats.served,
            "seed {seed}: more Ok responses than serves"
        );
        // Every poisoned request eventually earned its typed rejection,
        // and the server counted each *delivery* exactly once: at least
        // one count per observed rejection, at most one extra per
        // response lost in transport (the client re-sent, the server
        // re-counted). With a quiet transport the bounds collapse to
        // equality — see `poisoned_payloads_are_rejected_before_admission`.
        let rejected = poison_rejected.load(Ordering::Relaxed);
        let lost = poison_reconnects.load(Ordering::Relaxed);
        assert_eq!(rejected, POISON_REQUESTS as u64, "seed {seed}");
        assert!(
            stats.bad_input >= rejected && stats.bad_input <= rejected + lost,
            "seed {seed}: bad_input {} outside [{rejected}, {}]: {stats:?}",
            stats.bad_input,
            rejected + lost
        );

        totals.requests_ok += ok_count.load(Ordering::Relaxed);
        totals.bad_input += stats.bad_input;
        totals.poison_rejected += rejected;
        totals.requests_rejected += rejected_count.load(Ordering::Relaxed);
        totals.reconnects += reconnect_count.load(Ordering::Relaxed);
        totals.busy_retries += busy_retry_count.load(Ordering::Relaxed);
        totals.served += stats.served;
        totals.panics_caught += stats.panics_caught;
        totals.quarantined += stats.quarantined;
        totals.timeouts += stats.timeouts;
        totals.io_errors += stats.io_errors;
        totals.frames_truncated += stats.frames_truncated;
        totals.batches += stats.batches;
    }

    // Cross-seed: the chaos plan must actually have bitten — panics
    // caught and quarantines recorded by the isolation layer, transport
    // faults absorbed by reconnects — while most traffic still succeeded.
    assert!(
        totals.requests_ok > 0,
        "no request ever succeeded: {totals:?}"
    );
    assert!(
        totals.panics_caught > 0,
        "chaos plan never fired a panic: {totals:?}"
    );
    assert!(
        totals.quarantined > 0,
        "chaos plan never quarantined a sample: {totals:?}"
    );
    assert!(
        totals.reconnects + totals.frames_truncated + totals.io_errors + totals.timeouts > 0,
        "chaos plan never faulted the transport: {totals:?}"
    );
    assert!(
        totals.bad_input >= totals.poison_rejected && totals.poison_rejected > 0,
        "poison quarantine never exercised: {totals:?}"
    );

    if let Ok(path) = std::env::var("DFR_CHAOS_STATS") {
        let json = format!(
            "{{\n  \"seeds\": {},\n  \"clients_per_seed\": {},\n  \"requests_per_client\": {},\n  \
             \"requests_ok\": {},\n  \"requests_rejected\": {},\n  \"reconnects\": {},\n  \
             \"busy_retries\": {},\n  \"served\": {},\n  \"batches\": {},\n  \
             \"panics_caught\": {},\n  \"quarantined\": {},\n  \"timeouts\": {},\n  \
             \"io_errors\": {},\n  \"frames_truncated\": {},\n  \"bad_input\": {},\n  \
             \"poison_rejected\": {}\n}}\n",
            SEEDS.len(),
            CLIENTS,
            REQUESTS_PER_CLIENT,
            totals.requests_ok,
            totals.requests_rejected,
            totals.reconnects,
            totals.busy_retries,
            totals.served,
            totals.batches,
            totals.panics_caught,
            totals.quarantined,
            totals.timeouts,
            totals.io_errors,
            totals.frames_truncated,
            totals.bad_input,
            totals.poison_rejected,
        );
        std::fs::write(&path, json).expect("write DFR_CHAOS_STATS");
        eprintln!("chaos soak stats written to {path}");
    }
    eprintln!("chaos soak totals: {totals:?}");
}
