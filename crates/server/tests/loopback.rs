//! End-to-end loopback suite: a real `Server` on an ephemeral port, real
//! sockets, concurrent clients, and a hot-swap under live traffic — with
//! every response checked **bitwise** (class, probabilities, digest)
//! against a direct in-process [`ServeSession`] on the same model. The
//! network layer must add exactly nothing to the numbers.

use dfr_core::DfrClassifier;
use dfr_linalg::Matrix;
use dfr_serve::{FrozenModel, ServeSession};
use dfr_server::{Client, ModelRegistry, RetryPolicy, Server, ServerConfig, ServerError, Status};
use std::sync::Arc;
use std::time::Duration;

fn model(tweak: f64, seed: u64) -> DfrClassifier {
    let mut m = DfrClassifier::paper_default(6, 2, 3, seed).unwrap();
    m.reservoir_mut().set_params(0.06, 0.15).unwrap();
    for j in 0..m.feature_dim() {
        for k in 0..3 {
            m.w_out_mut()[(k, j)] = tweak * (((j * 5 + k * 3 + 1) % 17) as f64 - 8.0);
        }
    }
    m
}

fn series_for(i: usize) -> Matrix {
    let t = 2 + (i * 7) % 19;
    Matrix::from_vec(
        t,
        2,
        (0..t * 2)
            .map(|k| (((k * 11 + i * 13) % 31) as f64 * 0.21 - 3.0).sin())
            .collect(),
    )
    .unwrap()
}

/// (class, probability bits, digest) oracle computed through a direct
/// in-process session — the ground truth network responses must equal.
fn oracle(frozen: &FrozenModel, series: &[Matrix]) -> Vec<(usize, Vec<u64>, u64)> {
    let mut session = ServeSession::builder(frozen.clone()).build();
    let result = session.predict_batch(series).unwrap();
    (0..series.len())
        .map(|i| {
            (
                result.predictions()[i],
                result
                    .probabilities_of(i)
                    .iter()
                    .map(|p| p.to_bits())
                    .collect(),
                result.digest(),
            )
        })
        .collect()
}

fn start(frozen: FrozenModel, config: ServerConfig) -> Server {
    let registry = Arc::new(ModelRegistry::new(frozen));
    Server::bind("127.0.0.1:0", registry, config).unwrap()
}

/// The headline contract: every response that crosses the socket is
/// bitwise identical to the direct in-process predict — predictions,
/// probabilities and digest.
#[test]
fn responses_are_bitwise_identical_to_direct_predict() {
    let frozen = FrozenModel::freeze(&model(0.02, 3));
    let series: Vec<Matrix> = (0..24).map(series_for).collect();
    let expected = oracle(&frozen, &series);

    let mut server = start(frozen, ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    for (i, s) in series.iter().enumerate() {
        let got = client.predict(s).unwrap();
        let (class, bits, digest) = &expected[i];
        assert_eq!(got.class, *class, "sample {i}");
        assert_eq!(got.digest, *digest, "sample {i}");
        let got_bits: Vec<u64> = got.probabilities.iter().map(|p| p.to_bits()).collect();
        assert_eq!(&got_bits, bits, "sample {i} probabilities");
    }
    let stats = server.stats();
    assert_eq!(stats.served, series.len() as u64);
    assert_eq!(stats.malformed, 0);
    server.shutdown();
}

/// Concurrent clients hammering one server: every response still
/// bitwise-matches the oracle, no cross-request mixups (each request is
/// checked against ITS series' expected bits).
#[test]
fn concurrent_clients_get_unmixed_bitwise_answers() {
    let frozen = FrozenModel::freeze(&model(0.02, 5));
    let series: Vec<Matrix> = (0..32).map(series_for).collect();
    let expected = Arc::new(oracle(&frozen, &series));
    let series = Arc::new(series);

    // A tight coalescing deadline plus parallel senders makes real
    // multi-request batches overwhelmingly likely.
    let mut server = start(
        frozen,
        ServerConfig {
            batch_deadline: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();

    let workers: Vec<_> = (0..4)
        .map(|w| {
            let expected = Arc::clone(&expected);
            let series = Arc::clone(&series);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..3 {
                    for i in (w % 4..series.len()).step_by(4) {
                        let got = client.predict(&series[i]).unwrap();
                        let (class, bits, digest) = &expected[i];
                        assert_eq!(got.class, *class, "worker {w} round {round} sample {i}");
                        assert_eq!(got.digest, *digest);
                        let got_bits: Vec<u64> =
                            got.probabilities.iter().map(|p| p.to_bits()).collect();
                        assert_eq!(&got_bits, bits, "worker {w} round {round} sample {i}");
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let stats = server.stats();
    assert_eq!(stats.served, 4 * 3 * 8);
    assert_eq!(stats.connections, 4);
    server.shutdown();
}

/// Atomic hot-swap under live traffic: mid-stream, a retrained model is
/// published. Every response before AND after must bitwise-match the
/// model its digest claims served it; unpinned traffic flips to the new
/// digest, digest-pinned traffic keeps getting the old model exactly.
#[test]
fn hot_swap_mid_stream_is_atomic_and_bitwise_faithful() {
    let frozen_a = FrozenModel::freeze(&model(0.02, 7));
    let frozen_b = FrozenModel::freeze(&model(-0.03, 7));
    let digest_a = frozen_a.content_digest();
    let digest_b = frozen_b.content_digest();
    assert_ne!(digest_a, digest_b);

    let series: Vec<Matrix> = (0..20).map(series_for).collect();
    let by_a = oracle(&frozen_a, &series);
    let by_b = oracle(&frozen_b, &series);

    let mut server = start(frozen_a, ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Phase 1: only A is registered; unpinned traffic serves A.
    for (i, s) in series.iter().take(10).enumerate() {
        let got = client.predict(s).unwrap();
        assert_eq!(got.digest, digest_a);
        assert_eq!(got.class, by_a[i].0);
    }

    // Hot-swap mid-stream, same connection staying up.
    assert_eq!(server.registry().publish(frozen_b), digest_b);

    for (i, s) in series.iter().enumerate().skip(10) {
        // Unpinned traffic now serves B, bitwise.
        let got = client.predict(s).unwrap();
        assert_eq!(got.digest, digest_b, "sample {i} after swap");
        assert_eq!(got.class, by_b[i].0);
        let bits: Vec<u64> = got.probabilities.iter().map(|p| p.to_bits()).collect();
        assert_eq!(bits, by_b[i].1, "sample {i} post-swap probabilities");

        // A digest-pinned request on the same connection still gets the
        // OLD model, bitwise.
        let pinned = client.predict_pinned(s, digest_a).unwrap();
        assert_eq!(pinned.digest, digest_a);
        assert_eq!(pinned.class, by_a[i].0);
        let bits: Vec<u64> = pinned.probabilities.iter().map(|p| p.to_bits()).collect();
        assert_eq!(bits, by_a[i].1, "sample {i} pinned probabilities");
    }
    server.shutdown();
}

/// Every response's digest is a registered model, and mixed pinned and
/// unpinned traffic racing a swap never yields bits that match neither
/// model (atomicity: there is no in-between model).
#[test]
fn racing_swap_never_serves_a_half_updated_model() {
    let frozen_a = FrozenModel::freeze(&model(0.025, 11));
    let frozen_b = FrozenModel::freeze(&model(-0.02, 11));
    let series: Vec<Matrix> = (0..12).map(series_for).collect();
    let by_a = oracle(&frozen_a, &series);
    let by_b = oracle(&frozen_b, &series);
    let digest_a = frozen_a.content_digest();
    let digest_b = frozen_b.content_digest();

    let mut server = start(
        frozen_a,
        ServerConfig {
            batch_deadline: Duration::from_millis(1),
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();
    let registry = Arc::clone(server.registry());
    let frozen_b_pub = frozen_b.clone();
    let swapper = std::thread::spawn(move || {
        // Publish B (and A again, and B again) while clients stream.
        for round in 0..6 {
            std::thread::sleep(Duration::from_millis(3));
            if round % 2 == 0 {
                registry.publish(frozen_b_pub.clone());
            } else {
                registry.activate(digest_a).unwrap();
            }
        }
    });

    let mut client = Client::connect(addr).unwrap();
    for round in 0..10 {
        for (i, s) in series.iter().enumerate() {
            let got = client.predict(s).unwrap();
            let (class, bits) = if got.digest == digest_a {
                (&by_a[i].0, &by_a[i].1)
            } else {
                assert_eq!(got.digest, digest_b, "round {round} sample {i}");
                (&by_b[i].0, &by_b[i].1)
            };
            assert_eq!(got.class, *class, "round {round} sample {i}");
            let got_bits: Vec<u64> = got.probabilities.iter().map(|p| p.to_bits()).collect();
            assert_eq!(&got_bits, bits, "round {round} sample {i}");
        }
    }
    swapper.join().unwrap();
    server.shutdown();
}

/// Protocol-level rejections surface as typed statuses: an unknown
/// digest pin, a malformed frame on a live connection (which stays
/// usable afterwards), and requests after shutdown.
#[test]
fn rejections_are_typed_and_the_connection_survives_malformed_frames() {
    let frozen = FrozenModel::freeze(&model(0.02, 13));
    let mut server = start(frozen, ServerConfig::default());
    let addr = server.local_addr();
    let s = series_for(0);

    // Unknown digest pin.
    let mut client = Client::connect(addr).unwrap();
    match client.predict_pinned(&s, 0xdead_beef) {
        Err(ServerError::Rejected { status, .. }) => assert_eq!(status, Status::UnknownDigest),
        other => panic!("expected UnknownDigest rejection, got {other:?}"),
    }

    // A syntactically framed but semantically garbage body: the server
    // answers Malformed and keeps the connection alive.
    {
        use dfr_server::frame::{decode_response, read_frame, write_frame, DEFAULT_MAX_BODY};
        use std::net::TcpStream;
        let mut raw = TcpStream::connect(addr).unwrap();
        write_frame(&mut raw, &[0xFF; 24]).unwrap();
        let mut buf = Vec::new();
        let body = read_frame(&mut (&raw), &mut buf, DEFAULT_MAX_BODY)
            .unwrap()
            .expect("a Malformed response, not a hangup");
        let resp = decode_response(body).unwrap();
        assert_eq!(resp.status, Status::Malformed);
    }
    // The first client still works after someone else's garbage.
    assert!(client.predict(&s).is_ok());
    assert!(server.stats().malformed >= 1);

    server.shutdown();
    // Post-shutdown: the request fails (connection refused / closed /
    // explicit ShuttingDown) — it must not hang or panic.
    match client.predict(&s) {
        Err(_) => {}
        Ok(_) => panic!("request served after shutdown"),
    }
}

/// Explicit backpressure: with a tiny admission queue and a slow-to-fill
/// coalescer, floods answer Busy with a retry hint instead of queueing
/// unboundedly — and a subsequent retry succeeds.
#[test]
fn overload_rejects_with_busy_and_a_retry_hint() {
    let frozen = FrozenModel::freeze(&model(0.02, 17));
    let mut server = start(
        frozen,
        ServerConfig {
            queue_capacity: 1,
            // A long deadline with max_batch 1 keeps the batcher slow so
            // the 1-deep queue backs up under a burst.
            max_batch: 1,
            batch_deadline: Duration::from_millis(40),
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();
    let s = series_for(1);

    // Fire-and-forget burst on raw sockets so rejections don't stop the
    // flood (a Client would return Err on the first Busy).
    use dfr_server::frame::{
        decode_response, encode_request, read_frame, Request, DEFAULT_MAX_BODY,
    };
    use std::io::Write;
    use std::net::TcpStream;
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_nodelay(true).unwrap();
    let mut frame = Vec::new();
    const BURST: usize = 32;
    for id in 0..BURST as u64 {
        let req = Request {
            request_id: id + 1,
            digest_pin: 0,
            series: s.clone(),
        };
        encode_request(&req, &mut frame);
        raw.write_all(&frame).unwrap();
    }
    raw.flush().unwrap();

    let mut buf = Vec::new();
    let mut busy = 0u32;
    let mut ok = 0u32;
    let mut hint = 0u32;
    for _ in 0..BURST {
        let body = read_frame(&mut (&raw), &mut buf, DEFAULT_MAX_BODY)
            .unwrap()
            .expect("every request gets a response");
        let resp = decode_response(body).unwrap();
        match resp.status {
            Status::Ok => ok += 1,
            Status::Busy => {
                busy += 1;
                hint = hint.max(resp.retry_after_ms);
            }
            other => panic!("unexpected status {other}"),
        }
    }
    assert!(ok >= 1, "some requests must be served");
    assert!(
        busy >= 1,
        "a 1-deep queue under a {BURST}-burst must reject"
    );
    assert!(hint >= 1, "Busy must carry a retry hint");
    assert_eq!(server.stats().rejected_busy as u32, busy);

    // Backpressure is advisory, not fatal: the client-side retry
    // discipline (jittered backoff honoring the hint) absorbs the
    // residual congestion and gets an answer without any manual sleep.
    let mut client = Client::connect(addr).unwrap();
    let policy = RetryPolicy {
        max_attempts: 32,
        seed: 17,
        ..RetryPolicy::default()
    };
    assert!(client.call_with_retry(&s, 0, &policy).is_ok());
    server.shutdown();
}
