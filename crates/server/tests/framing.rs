//! Property suite for the wire protocol: random requests and responses
//! round-trip bitwise through encode → frame → decode, and every
//! mutation class (truncation, bit flips in the header, hostile length
//! prefixes, trailing garbage) is rejected with a typed error — never a
//! panic, never a silently wrong decode.

use dfr_linalg::Matrix;
use dfr_server::frame::{
    decode_request, decode_response, encode_request, encode_response, read_frame, FrameError,
    Request, Response, Status, DEFAULT_MAX_BODY,
};
use proptest::prelude::*;

fn series(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|k| ((k as f64 + seed as f64) * 0.7311).sin() * 3.0)
            .collect(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Requests round-trip bitwise: ids, pins, shape and every f64 of
    /// the payload (including values produced by transcendentals).
    #[test]
    fn requests_round_trip_bitwise(
        request_id in 0u64..u64::MAX,
        digest_pin in 0u64..u64::MAX,
        rows in 1usize..40,
        cols in 1usize..6,
        seed in 0u64..1000,
    ) {
        let req = Request { request_id, digest_pin, series: series(rows, cols, seed) };
        let mut frame = Vec::new();
        encode_request(&req, &mut frame);
        // The length prefix is consistent with the body.
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        prop_assert_eq!(len, frame.len() - 4);
        let got = decode_request(&frame[4..]).unwrap();
        prop_assert_eq!(&got, &req);
        // Bitwise, not just PartialEq: compare the payload bits too.
        for (a, b) in got.series.as_slice().iter().zip(req.series.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Responses round-trip across all statuses, retry hints and
    /// probability vectors.
    #[test]
    fn responses_round_trip_bitwise(
        request_id in 0u64..u64::MAX,
        digest in 0u64..u64::MAX,
        status_code in 0u32..7,
        retry in 0u32..100_000,
        classes in 0usize..12,
        seed in 0u64..1000,
    ) {
        let status = Status::from_code(status_code as u16).unwrap();
        let probabilities: Vec<f64> = if status == Status::Ok {
            (0..classes).map(|k| ((k as f64 + seed as f64) * 0.417).cos().abs()).collect()
        } else {
            Vec::new()
        };
        let resp = Response {
            request_id,
            status,
            retry_after_ms: retry,
            digest,
            class: (classes as u32).saturating_sub(1),
            probabilities,
        };
        let mut frame = Vec::new();
        encode_response(&resp, &mut frame);
        let got = decode_response(&frame[4..]).unwrap();
        prop_assert_eq!(&got, &resp);
        for (a, b) in got.probabilities.iter().zip(&resp.probabilities) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Every strict prefix of a valid request body fails to decode with
    /// a typed error (no panic, no partial success).
    #[test]
    fn truncated_requests_are_rejected(
        rows in 1usize..10,
        cols in 1usize..4,
        cut_frac in 0.0f64..1.0,
    ) {
        let req = Request { request_id: 7, digest_pin: 9, series: series(rows, cols, 3) };
        let mut frame = Vec::new();
        encode_request(&req, &mut frame);
        let body = &frame[4..];
        let cut = (((body.len() as f64) * cut_frac) as usize).min(body.len() - 1);
        prop_assert!(decode_request(&body[..cut]).is_err());
    }

    /// Flipping any single byte of the 12-byte header either changes
    /// the decoded ids (reserved/id bytes) or produces a typed error
    /// (version/kind bytes) — never a panic.
    #[test]
    fn header_byte_flips_never_panic(
        pos in 0usize..12,
        xor in 1u32..256,
    ) {
        let req = Request { request_id: 1, digest_pin: 2, series: series(3, 2, 5) };
        let mut frame = Vec::new();
        encode_request(&req, &mut frame);
        let mut body = frame[4..].to_vec();
        body[pos] ^= xor as u8;
        if let Ok(got) = decode_request(&body) {
            // Only id / reserved bytes may mutate without rejection.
            prop_assert!(pos >= 2, "version/kind flip must be rejected");
            prop_assert_eq!(got.series.as_slice(), req.series.as_slice());
        }
    }

    /// A hostile length prefix beyond the cap is rejected before any
    /// buffering; prefixes within the cap but beyond the stream fail as
    /// truncated.
    #[test]
    fn hostile_length_prefixes_are_contained(declared in 0u32..u32::MAX) {
        let mut stream = Vec::new();
        stream.extend_from_slice(&declared.to_le_bytes());
        stream.extend_from_slice(&[0u8; 64]); // far fewer bytes than declared
        let mut buf = Vec::new();
        let mut r = stream.as_slice();
        match read_frame(&mut r, &mut buf, 1 << 16) {
            Ok(Some(body)) => prop_assert!(body.len() == declared as usize && body.len() <= 64),
            Ok(None) => prop_assert!(false, "non-empty stream cannot be clean EOF"),
            Err(FrameError::Oversized { len, max }) => {
                prop_assert_eq!(len, declared as usize);
                prop_assert_eq!(max, 1 << 16);
            }
            Err(FrameError::TruncatedFrame { expected, found }) => {
                prop_assert_eq!(expected, declared as usize);
                prop_assert_eq!(found, 64);
            }
            Err(e) => prop_assert!(false, "unexpected error {:?}", e),
        }
    }

    /// Length prefix and declared shape disagreeing — the shape claims
    /// more (or fewer) elements than the body carries — is rejected with
    /// a typed error, never a buffer over-read or a silent short decode.
    #[test]
    fn length_shape_disagreement_is_rejected(
        rows in 1usize..10,
        cols in 1usize..4,
        claimed_rows in 0u32..64,
    ) {
        let req = Request { request_id: 11, digest_pin: 0, series: series(rows, cols, 2) };
        let mut frame = Vec::new();
        encode_request(&req, &mut frame);
        let mut body = frame[4..].to_vec();
        // Rewrite the declared row count (offset 20: 12-byte header +
        // 8-byte pin) without touching the payload length.
        body[20..24].copy_from_slice(&claimed_rows.to_le_bytes());
        let result = decode_request(&body);
        if claimed_rows as usize == rows {
            prop_assert!(result.is_ok(), "honest shape must still decode");
        } else {
            prop_assert!(result.is_err(), "shape {} vs {} rows must be rejected", claimed_rows, rows);
        }
    }

    /// Version skew: every version byte other than the current protocol
    /// version is rejected — for requests and responses alike — so an
    /// old binary can never half-understand a newer frame.
    #[test]
    fn version_skew_is_rejected(version in 0u32..256) {
        let req = Request { request_id: 5, digest_pin: 0, series: series(2, 2, 4) };
        let mut frame = Vec::new();
        encode_request(&req, &mut frame);
        let mut body = frame[4..].to_vec();
        body[0] = version as u8;
        prop_assert_eq!(
            decode_request(&body).is_ok(),
            version as u8 == dfr_server::PROTOCOL_VERSION,
            "request version {} must decode iff current", version
        );

        let resp = Response {
            request_id: 5,
            status: Status::Ok,
            retry_after_ms: 0,
            digest: 42,
            class: 0,
            probabilities: vec![1.0],
        };
        encode_response(&resp, &mut frame);
        let mut body = frame[4..].to_vec();
        body[0] = version as u8;
        prop_assert_eq!(
            decode_response(&body).is_ok(),
            version as u8 == dfr_server::PROTOCOL_VERSION,
            "response version {} must decode iff current", version
        );
    }

    /// Unknown response status codes are a typed BadStatus, not a panic
    /// or a misdecoded variant.
    #[test]
    fn unknown_status_codes_are_rejected(code in 7u32..u16::MAX as u32) {
        let resp = Response {
            request_id: 1,
            status: Status::Busy,
            retry_after_ms: 5,
            digest: 0,
            class: 0,
            probabilities: Vec::new(),
        };
        let mut frame = Vec::new();
        encode_response(&resp, &mut frame);
        let mut body = frame[4..].to_vec();
        // Status lives right after the 12-byte response header.
        body[12..14].copy_from_slice(&(code as u16).to_le_bytes());
        prop_assert!(matches!(
            decode_response(&body),
            Err(FrameError::BadStatus { code: c }) if c == code as u16
        ));
    }

    /// Trailing garbage after a well-formed payload is rejected.
    #[test]
    fn trailing_garbage_is_rejected(extra in 1usize..32) {
        let req = Request { request_id: 3, digest_pin: 0, series: series(2, 2, 1) };
        let mut frame = Vec::new();
        encode_request(&req, &mut frame);
        let mut body = frame[4..].to_vec();
        body.extend(std::iter::repeat(0xAB).take(extra));
        prop_assert!(matches!(
            decode_request(&body),
            Err(FrameError::TrailingBytes { extra: e }) if e == extra
        ));
    }
}

/// Several frames back to back on one stream decode in order, and the
/// reader reports clean EOF exactly at the end.
#[test]
fn back_to_back_frames_stream_cleanly() {
    let mut stream = Vec::new();
    let mut frame = Vec::new();
    let reqs: Vec<Request> = (0..5)
        .map(|i| Request {
            request_id: i as u64 + 1,
            digest_pin: 0,
            series: series(1 + i, 2, i as u64),
        })
        .collect();
    for req in &reqs {
        encode_request(req, &mut frame);
        stream.extend_from_slice(&frame);
    }
    let mut r = stream.as_slice();
    let mut buf = Vec::new();
    for req in &reqs {
        let body = read_frame(&mut r, &mut buf, DEFAULT_MAX_BODY)
            .unwrap()
            .unwrap();
        assert_eq!(&decode_request(body).unwrap(), req);
    }
    assert!(read_frame(&mut r, &mut buf, DEFAULT_MAX_BODY)
        .unwrap()
        .is_none());
}

/// Truncation at every *exact* field boundary of the request layout —
/// not just random fractions — is rejected: after the version byte, the
/// kind byte, the reserved u16, the request id, the digest pin, the row
/// count, the column count, and one full f64. Boundary cuts are the
/// likeliest real-world torn reads (a peer dying between writes), and
/// off-by-one decoders pass random-cut tests while failing exactly here.
#[test]
fn truncation_at_every_header_boundary_is_rejected() {
    let req = Request {
        request_id: 42,
        digest_pin: 0xfeed,
        series: series(3, 2, 9),
    };
    let mut frame = Vec::new();
    encode_request(&req, &mut frame);
    let body = &frame[4..];
    // version | +kind | +reserved | +request_id | +digest_pin |
    // +rows | +cols | +first f64
    for cut in [0usize, 1, 2, 4, 12, 20, 24, 28, 36] {
        assert!(cut < body.len(), "cut {cut} must be a strict prefix");
        assert!(
            decode_request(&body[..cut]).is_err(),
            "request truncated at byte {cut} must be rejected"
        );
    }
    // The same boundaries seen through the framer: a stream that dies
    // mid-body is TruncatedFrame, never a hang or partial decode.
    for cut in [0usize, 1, 2, 4, 12, 20, 24, 28, 36] {
        let mut stream = Vec::new();
        stream.extend_from_slice(&(body.len() as u32).to_le_bytes());
        stream.extend_from_slice(&body[..cut]);
        let mut r = stream.as_slice();
        let mut buf = Vec::new();
        assert!(
            matches!(
                read_frame(&mut r, &mut buf, DEFAULT_MAX_BODY),
                Err(FrameError::TruncatedFrame { expected, found })
                    if expected == body.len() && found == cut
            ),
            "stream dying {cut} bytes into the body must be TruncatedFrame"
        );
    }
}

/// An oversized declared shape (rows × cols beyond the element cap) is
/// rejected as BadShape even when the u32 multiplication would wrap.
#[test]
fn overflowing_shapes_are_rejected_not_wrapped() {
    let req = Request {
        request_id: 1,
        digest_pin: 0,
        series: series(2, 2, 0),
    };
    let mut frame = Vec::new();
    encode_request(&req, &mut frame);
    let mut body = frame[4..].to_vec();
    // rows at offset 20, cols at 24 (12-byte header + 8-byte pin).
    body[20..24].copy_from_slice(&u32::MAX.to_le_bytes());
    body[24..28].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        decode_request(&body),
        Err(FrameError::BadShape { .. })
    ));
}
