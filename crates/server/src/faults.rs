//! Deterministic, seeded fault injection for the serving stack.
//!
//! The only way to trust a failure model is to exercise it: this module
//! lets the server inject the faults edge deployments actually see —
//! stalled reads, torn frames, mid-frame disconnects, slow-drip writes,
//! and panics inside the batcher — **deterministically per seed**, in
//! the same binary that ships. A [`FaultPlan`] is threaded through
//! [`ServerConfig`](crate::ServerConfig); the default
//! [`FaultPlan::none`] is a single `Option` check on each I/O call and
//! injects nothing, so production pays nothing for carrying the
//! machinery.
//!
//! Faults are drawn from the in-tree xoshiro256++ generator
//! ([`rand::rngs::StdRng`]), one independent stream per connection half
//! (reader/writer) and one for the batcher, each derived from the plan
//! seed — so a given seed produces the same *decision sequence* even
//! though wall-clock interleaving still varies. The chaos soak in
//! `tests/chaos.rs` runs a fixed seed set and asserts the bit-identity
//! contract survives every one.
//!
//! # Env knobs
//!
//! `DFR_FAULTS` turns fault injection on for any server constructed with
//! a default [`ServerConfig`](crate::ServerConfig), e.g.:
//!
//! ```text
//! DFR_FAULTS="seed=7,torn_read=0.2,disconnect=0.02,panic_batch=0.05"
//! ```
//!
//! Keys: `seed` (u64), `read_delay` / `torn_read` / `disconnect` /
//! `slow_write` / `panic_batch` / `panic_sample` (probabilities in
//! `[0,1]`), `read_delay_us` / `write_delay_us` (stall lengths).
//! Unknown keys or unparsable values panic loudly — a chaos run with a
//! typo'd knob silently testing nothing is worse than a crash.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Read, Write};
use std::sync::Arc;
use std::time::Duration;

/// Message carried by every injected panic, so test panic hooks can
/// distinguish scheduled faults from real bugs.
pub const INJECTED_PANIC: &str = "injected fault (scheduled by FaultPlan)";

/// Probabilities and magnitudes of each injected fault class.
///
/// All probabilities are per *event* (one I/O call, one batch, one
/// quarantined sample), drawn independently from the plan's seeded
/// stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Probability a read call stalls for [`FaultSpec::read_delay_us`]
    /// before touching the socket (slow client / congested link).
    pub read_delay: f64,
    /// Length of an injected read stall, in microseconds.
    pub read_delay_us: u64,
    /// Probability a read call returns at most one byte (torn / partial
    /// frames: the framing layer must reassemble).
    pub torn_read: f64,
    /// Probability an I/O call fails with `ConnectionReset` mid-frame
    /// (flaky network, peer crash).
    pub disconnect: f64,
    /// Probability a write call drips only a few bytes after stalling
    /// for [`FaultSpec::write_delay_us`] (slow-reading client).
    pub slow_write: f64,
    /// Length of an injected write stall, in microseconds.
    pub write_delay_us: u64,
    /// Probability one coalesced batch's serve panics inside the
    /// batcher (exercises `catch_unwind` isolation).
    pub panic_batch: f64,
    /// Probability one per-sample serve (the quarantine fallback path)
    /// panics, leaving that sample with a typed `Internal` rejection.
    pub panic_sample: f64,
}

impl FaultSpec {
    /// A spec that injects nothing (all probabilities zero).
    pub fn quiet() -> Self {
        FaultSpec {
            read_delay: 0.0,
            read_delay_us: 0,
            torn_read: 0.0,
            disconnect: 0.0,
            slow_write: 0.0,
            write_delay_us: 0,
            panic_batch: 0.0,
            panic_sample: 0.0,
        }
    }

    /// The chaos-soak profile: every fault class active at a rate that
    /// keeps a soak finishing quickly while still firing each class many
    /// times per run.
    pub fn chaos() -> Self {
        FaultSpec {
            read_delay: 0.05,
            read_delay_us: 2_000,
            torn_read: 0.20,
            disconnect: 0.02,
            slow_write: 0.10,
            write_delay_us: 500,
            panic_batch: 0.15,
            panic_sample: 0.25,
        }
    }
}

#[derive(Debug)]
struct Inner {
    seed: u64,
    spec: FaultSpec,
}

/// A seeded fault-injection plan, threaded through
/// [`ServerConfig`](crate::ServerConfig).
///
/// [`FaultPlan::none`] (the default) is zero-cost on the hot path: the
/// plan is one `Option<Arc<_>>`, and every injection site is a single
/// `is_none` check. A seeded plan derives an independent deterministic
/// stream per connection half and for the batcher.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Option<Arc<Inner>>,
}

impl FaultPlan {
    /// The no-fault plan: nothing is injected, checks compile down to an
    /// `Option` test.
    pub fn none() -> Self {
        FaultPlan { inner: None }
    }

    /// A plan injecting `spec`'s faults, deterministically in `seed`.
    pub fn seeded(seed: u64, spec: FaultSpec) -> Self {
        FaultPlan {
            inner: Some(Arc::new(Inner { seed, spec })),
        }
    }

    /// Builds a plan from the `DFR_FAULTS` environment variable, or
    /// [`FaultPlan::none`] when it is unset (see the module docs for the
    /// knob syntax).
    ///
    /// # Panics
    ///
    /// Panics on unknown keys or unparsable values — a chaos run with a
    /// typo'd knob must fail loudly, not silently inject nothing.
    pub fn from_env() -> Self {
        match std::env::var("DFR_FAULTS") {
            Ok(s) if !s.trim().is_empty() => Self::parse(&s),
            _ => FaultPlan::none(),
        }
    }

    /// Parses the `DFR_FAULTS` knob syntax (`key=value`, comma-separated).
    fn parse(s: &str) -> Self {
        let mut seed = 0u64;
        let mut spec = FaultSpec::quiet();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .unwrap_or_else(|| panic!("DFR_FAULTS: expected key=value, got {part:?}"));
            let fail = |what: &str| -> ! { panic!("DFR_FAULTS: bad {what} in {part:?}") };
            let prob = |slot: &mut f64| {
                let p: f64 = value.parse().unwrap_or_else(|_| fail("probability"));
                if !(0.0..=1.0).contains(&p) {
                    fail("probability (must be in [0,1])");
                }
                *slot = p;
            };
            match key.trim() {
                "seed" => seed = value.parse().unwrap_or_else(|_| fail("seed")),
                "read_delay" => prob(&mut spec.read_delay),
                "torn_read" => prob(&mut spec.torn_read),
                "disconnect" => prob(&mut spec.disconnect),
                "slow_write" => prob(&mut spec.slow_write),
                "panic_batch" => prob(&mut spec.panic_batch),
                "panic_sample" => prob(&mut spec.panic_sample),
                "read_delay_us" => {
                    spec.read_delay_us = value.parse().unwrap_or_else(|_| fail("microseconds"))
                }
                "write_delay_us" => {
                    spec.write_delay_us = value.parse().unwrap_or_else(|_| fail("microseconds"))
                }
                other => panic!("DFR_FAULTS: unknown knob {other:?}"),
            }
        }
        FaultPlan::seeded(seed, spec)
    }

    /// Whether this plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.inner.is_none()
    }

    /// The plan seed, when faults are active.
    pub fn seed(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.seed)
    }

    /// Derives the independent fault stream for one connection half.
    /// `role` distinguishes the reader (0) from the writer (1) so their
    /// decision streams never correlate.
    pub(crate) fn io_faults(&self, connection: u64, role: u64) -> Option<IoFaults> {
        self.inner.as_ref().map(|inner| IoFaults {
            plan: Arc::clone(inner),
            rng: StdRng::seed_from_u64(
                inner
                    .seed
                    .wrapping_add(connection.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                    .wrapping_add(role.wrapping_mul(0xd1b5_4a32_d192_ed03)),
            ),
        })
    }

    /// Derives the batcher's panic-injection stream.
    pub(crate) fn serve_faults(&self) -> Option<ServeFaults> {
        self.inner.as_ref().map(|inner| ServeFaults {
            plan: Arc::clone(inner),
            rng: StdRng::seed_from_u64(inner.seed ^ 0xbad_c0ff_ee00_fa17),
        })
    }
}

/// One connection half's fault stream (owned by that half's thread).
#[derive(Debug)]
pub(crate) struct IoFaults {
    plan: Arc<Inner>,
    rng: StdRng,
}

impl IoFaults {
    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.gen::<f64>() < p
    }
}

/// A `Read` adapter injecting the plan's read-side faults: stalls, torn
/// (single-byte) reads, and mid-frame disconnects.
#[derive(Debug)]
pub(crate) struct FaultyRead<R> {
    inner: R,
    faults: Option<IoFaults>,
}

impl<R> FaultyRead<R> {
    pub(crate) fn new(inner: R, faults: Option<IoFaults>) -> Self {
        FaultyRead { inner, faults }
    }
}

impl<R: Read> Read for FaultyRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let Some(f) = self.faults.as_mut() else {
            return self.inner.read(buf);
        };
        if f.roll(f.plan.spec.disconnect) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                INJECTED_PANIC,
            ));
        }
        if f.roll(f.plan.spec.read_delay) {
            std::thread::sleep(Duration::from_micros(f.plan.spec.read_delay_us));
        }
        if f.roll(f.plan.spec.torn_read) && !buf.is_empty() {
            // A torn read: hand the framing layer one byte at a time so
            // it must reassemble across calls.
            return self.inner.read(&mut buf[..1]);
        }
        self.inner.read(buf)
    }
}

/// A `Write` adapter injecting the plan's write-side faults: slow-drip
/// partial writes and mid-frame disconnects.
#[derive(Debug)]
pub(crate) struct FaultyWrite<W> {
    inner: W,
    faults: Option<IoFaults>,
}

impl<W> FaultyWrite<W> {
    pub(crate) fn new(inner: W, faults: Option<IoFaults>) -> Self {
        FaultyWrite { inner, faults }
    }
}

impl<W: Write> Write for FaultyWrite<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let Some(f) = self.faults.as_mut() else {
            return self.inner.write(buf);
        };
        if f.roll(f.plan.spec.disconnect) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                INJECTED_PANIC,
            ));
        }
        if f.roll(f.plan.spec.slow_write) && buf.len() > 1 {
            // Slow drip: stall, then let only a sliver through. The
            // caller's write_all loop (or BufWriter) must keep going.
            std::thread::sleep(Duration::from_micros(f.plan.spec.write_delay_us));
            let n = 1 + (f.rng.gen::<u64>() % 7) as usize;
            return self.inner.write(&buf[..n.min(buf.len())]);
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// The batcher's scheduled-panic stream (owned by the batcher thread).
#[derive(Debug)]
pub(crate) struct ServeFaults {
    plan: Arc<Inner>,
    rng: StdRng,
}

impl ServeFaults {
    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.gen::<f64>() < p
    }

    /// Panics (inside the batcher's `catch_unwind`) when the plan
    /// schedules a batch-level fault.
    pub(crate) fn maybe_panic_batch(&mut self) {
        if self.roll(self.plan.spec.panic_batch) {
            panic!("{INJECTED_PANIC}: batch serve");
        }
    }

    /// Panics (inside the per-sample `catch_unwind`) when the plan
    /// schedules a sample-level fault.
    pub(crate) fn maybe_panic_sample(&mut self) {
        if self.roll(self.plan.spec.panic_sample) {
            panic!("{INJECTED_PANIC}: per-sample serve");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_transparent() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        assert!(plan.seed().is_none());
        assert!(plan.io_faults(0, 0).is_none());
        assert!(plan.serve_faults().is_none());

        // A FaultyRead/Write with no faults passes bytes through intact.
        let data = b"hello frames".to_vec();
        let mut r = FaultyRead::new(data.as_slice(), None);
        let mut got = Vec::new();
        r.read_to_end(&mut got).unwrap();
        assert_eq!(got, data);

        let mut sink = Vec::new();
        let mut w = FaultyWrite::new(&mut sink, None);
        w.write_all(&data).unwrap();
        w.flush().unwrap();
        assert_eq!(sink, data);
    }

    #[test]
    fn seeded_plans_are_deterministic_per_stream() {
        let plan = FaultPlan::seeded(42, FaultSpec::chaos());
        let decisions = |conn: u64, role: u64| -> Vec<bool> {
            let mut f = plan.io_faults(conn, role).unwrap();
            (0..64).map(|_| f.roll(0.5)).collect()
        };
        assert_eq!(decisions(3, 0), decisions(3, 0), "same stream, same rolls");
        assert_ne!(
            decisions(3, 0),
            decisions(3, 1),
            "reader and writer streams are independent"
        );
        assert_ne!(decisions(3, 0), decisions(4, 0), "per-connection streams");
    }

    #[test]
    fn torn_reads_still_deliver_every_byte() {
        let plan = FaultPlan::seeded(7, {
            let mut s = FaultSpec::quiet();
            s.torn_read = 0.9;
            s
        });
        let data: Vec<u8> = (0..=255).collect();
        let mut r = FaultyRead::new(data.as_slice(), plan.io_faults(0, 0));
        let mut got = Vec::new();
        r.read_to_end(&mut got).unwrap();
        assert_eq!(got, data, "tearing reorders nothing and loses nothing");
    }

    #[test]
    fn slow_drip_writes_still_deliver_every_byte() {
        let plan = FaultPlan::seeded(9, {
            let mut s = FaultSpec::quiet();
            s.slow_write = 0.9;
            s.write_delay_us = 1;
            s
        });
        let data: Vec<u8> = (0..=255).rev().collect();
        let mut sink = Vec::new();
        let mut w = FaultyWrite::new(&mut sink, plan.io_faults(0, 1));
        w.write_all(&data).unwrap();
        assert_eq!(sink, data);
    }

    #[test]
    fn disconnects_surface_as_connection_reset() {
        let plan = FaultPlan::seeded(11, {
            let mut s = FaultSpec::quiet();
            s.disconnect = 1.0;
            s
        });
        let data = [1u8; 16];
        let mut r = FaultyRead::new(data.as_slice(), plan.io_faults(0, 0));
        let mut buf = [0u8; 16];
        let err = r.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        let mut w = FaultyWrite::new(Vec::new(), plan.io_faults(0, 1));
        assert_eq!(
            w.write(&data).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
    }

    #[test]
    fn env_knob_parses_and_rejects_garbage() {
        let plan = FaultPlan::parse("seed=7, torn_read=0.25, panic_batch=1.0, read_delay_us=50");
        assert_eq!(plan.seed(), Some(7));
        let inner = plan.inner.as_ref().unwrap();
        assert_eq!(inner.spec.torn_read, 0.25);
        assert_eq!(inner.spec.panic_batch, 1.0);
        assert_eq!(inner.spec.read_delay_us, 50);
        assert_eq!(inner.spec.disconnect, 0.0, "unset knobs stay quiet");

        for bad in ["seed", "seed=x", "torn_read=1.5", "unknown=1"] {
            assert!(
                std::panic::catch_unwind(|| FaultPlan::parse(bad)).is_err(),
                "{bad:?} must be rejected loudly"
            );
        }
    }

    #[test]
    fn scheduled_panics_fire_and_are_catchable() {
        let plan = FaultPlan::seeded(3, {
            let mut s = FaultSpec::quiet();
            s.panic_batch = 1.0;
            s
        });
        let mut sf = plan.serve_faults().unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sf.maybe_panic_batch();
        }));
        assert!(caught.is_err(), "a certain fault must fire");
        let msg = caught
            .unwrap_err()
            .downcast::<String>()
            .expect("panic payload is a string");
        assert!(msg.contains(INJECTED_PANIC));
        // panic_sample stays quiet on this spec.
        sf.maybe_panic_sample();
    }
}
