//! The serving loop: accept → frame → admit → coalesce → predict →
//! respond — with a tested failure model.
//!
//! Thread shape (all on `std` primitives — no async runtime):
//!
//! * one **accept** thread owning the listener;
//! * per connection, a detached **reader** (frames in, requests into the
//!   admission queue) and a detached **writer** (pre-encoded response
//!   frames out, fed over an `mpsc` channel so readers and the batcher
//!   never block on a slow client socket);
//! * one **batcher** thread draining the queue with the deadline
//!   coalescer and serving each batch through per-digest
//!   [`ServeSession`]s.
//!
//! Determinism under hot-swap: the batcher resolves the active model
//! **once per batch**, so a [`ModelRegistry::publish`] lands exactly on
//! a batch boundary — every request in a batch is served by one model
//! and stamped with its digest. Within a digest the batch is served in
//! admission order through `ServeSession::predict_batch`, whose results
//! are bitwise identical to any other grouping of the same samples
//! (`DESIGN.md` §11), so coalescing never changes a client's bytes.
//!
//! # Failure model (`DESIGN.md` §14)
//!
//! Every connection half carries a read/write timeout
//! ([`ServerConfig::idle_timeout`]): a stalled or slow-loris client is
//! **reaped** — disconnected and counted — instead of pinning a reader
//! thread or backing up the writer. The batcher wraps every serve in
//! [`std::panic::catch_unwind`]: a panicking batch falls back to
//! per-sample serving, and a panicking *sample* is **quarantined** with
//! a typed [`Status::Internal`] rejection while the rest of the batch
//! still gets bitwise-correct answers; the session's workspaces are
//! rebuilt after any unwind so a half-written buffer can never leak into
//! a later response. Shutdown drains: admission closes first (stragglers
//! get [`Status::ShuttingDown`]), the batcher answers everything already
//! admitted, then the threads join. All of it is exercised
//! deterministically by the seeded [`FaultPlan`](crate::FaultPlan)
//! wired through [`ServerConfig::faults`] and soaked in
//! `tests/chaos.rs`.

use crate::error::ServerError;
use crate::faults::{FaultPlan, FaultyRead, FaultyWrite, ServeFaults};
use crate::frame::{decode_request, encode_response, read_frame, FrameError, Response, Status};
use crate::queue::{AdmissionQueue, AdmitError};
use crate::registry::ModelRegistry;
use dfr_linalg::Matrix;
use dfr_serve::{BatchPlan, ServeSession, ServeSessionBuilder};
use std::collections::HashMap;
use std::io::{self, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Most samples one coalesced batch may carry (also the serving
    /// sessions' `BatchPlan` bound). Default 64.
    pub max_batch: usize,
    /// Latency budget of the batch coalescer: a request waits at most
    /// this long for companions before its batch is served. Default 2 ms.
    pub batch_deadline: Duration,
    /// Admission queue capacity; requests beyond it are rejected with
    /// `Busy` + a retry hint instead of queueing unboundedly. Default
    /// 1024.
    pub queue_capacity: usize,
    /// Cap on one request frame's body length. Default
    /// [`crate::frame::DEFAULT_MAX_BODY`].
    pub max_frame_body: usize,
    /// Pool width pinned onto the serving sessions (`None` inherits the
    /// ambient `dfr_pool` sizing — `DFR_THREADS`, then available cores).
    pub threads: Option<usize>,
    /// Per-connection read/write timeout: a connection that stays silent
    /// (or refuses to drain its responses) for this long is reaped —
    /// disconnected and counted — so slow-loris clients can never pin a
    /// reader thread or leak. Default 30 s.
    pub idle_timeout: Duration,
    /// Deterministic fault injection (see [`crate::faults`]). The
    /// default is [`FaultPlan::from_env`]: no faults unless the
    /// `DFR_FAULTS` env knob is set, in which case the *same shipping
    /// binary* runs under injected chaos.
    pub faults: FaultPlan,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_batch: 64,
            batch_deadline: Duration::from_millis(2),
            queue_capacity: 1024,
            max_frame_body: crate::frame::DEFAULT_MAX_BODY,
            threads: None,
            idle_timeout: Duration::from_secs(30),
            faults: FaultPlan::from_env(),
        }
    }
}

/// Monotonic serving counters (relaxed atomics — informational), plus
/// the `active_connections` gauge.
#[derive(Debug, Default)]
pub struct ServerStats {
    connections: AtomicU64,
    active_connections: AtomicU64,
    admitted: AtomicU64,
    rejected_busy: AtomicU64,
    bad_input: AtomicU64,
    malformed: AtomicU64,
    frames_truncated: AtomicU64,
    frames_oversized: AtomicU64,
    timeouts: AtomicU64,
    reaped: AtomicU64,
    io_errors: AtomicU64,
    unknown_digest: AtomicU64,
    batches: AtomicU64,
    served: AtomicU64,
    predict_failures: AtomicU64,
    panics_caught: AtomicU64,
    quarantined: AtomicU64,
    shutdown_rejected: AtomicU64,
}

/// A point-in-time copy of [`ServerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Connections currently open (gauge; 0 after a clean shutdown once
    /// every connection thread has unwound).
    pub active_connections: u64,
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests rejected with `Busy` (queue full).
    pub rejected_busy: u64,
    /// Requests carrying non-finite (NaN/inf) feature values, rejected
    /// with `BadInput` *before* admission — a poisoned sample never
    /// reaches the batcher, so it is absent from the admission ledger.
    pub bad_input: u64,
    /// Bodies that framed correctly but failed to decode (answered
    /// `Malformed`, connection kept).
    pub malformed: u64,
    /// Frames cut off mid-body by a disconnect (connection dropped).
    pub frames_truncated: u64,
    /// Frames whose declared length exceeded the cap (answered
    /// `Malformed`, connection dropped — the stream is desynced).
    pub frames_oversized: u64,
    /// Read/write timeout events (idle, slow-loris, or unread responses).
    pub timeouts: u64,
    /// Connections closed by the idle reaper (at most once per
    /// connection, however many of its halves timed out).
    pub reaped: u64,
    /// Connections dropped on a non-timeout socket error.
    pub io_errors: u64,
    /// Requests pinning an unregistered digest.
    pub unknown_digest: u64,
    /// Batches the coalescer served.
    pub batches: u64,
    /// Requests answered `Ok`.
    pub served: u64,
    /// Requests answered `PredictFailed`.
    pub predict_failures: u64,
    /// Panics caught by the batcher's isolation (batch- or sample-level).
    pub panics_caught: u64,
    /// Samples quarantined with a typed `Internal` rejection after their
    /// per-sample serve panicked.
    pub quarantined: u64,
    /// Requests answered `ShuttingDown` during the drain.
    pub shutdown_rejected: u64,
}

impl ServerStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            active_connections: self.active_connections.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
            bad_input: self.bad_input.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            frames_truncated: self.frames_truncated.load(Ordering::Relaxed),
            frames_oversized: self.frames_oversized.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            reaped: self.reaped.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
            unknown_digest: self.unknown_digest.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            predict_failures: self.predict_failures.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            shutdown_rejected: self.shutdown_rejected.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// Requests answered with a terminal response: the batcher's
    /// admission ledger must balance —
    /// `admitted == served + predict_failures + quarantined + unknown_digest`
    /// once the queue has drained. The chaos soak asserts this.
    pub fn answered(&self) -> u64 {
        self.served + self.predict_failures + self.quarantined + self.unknown_digest
    }
}

/// One admitted request, carrying its reply channel.
struct Job {
    request_id: u64,
    digest_pin: u64,
    series: Matrix,
    reply: mpsc::Sender<Vec<u8>>,
}

/// The TCP serving front-end. Constructed with [`Server::bind`]; the
/// returned handle owns the accept and batcher threads and shuts both
/// down on [`Server::shutdown`] or drop.
pub struct Server {
    local_addr: SocketAddr,
    registry: Arc<ModelRegistry>,
    queue: Arc<AdmissionQueue<Job>>,
    stats: Arc<ServerStats>,
    shutting_down: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    batcher_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept and batcher threads serving models from `registry`.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if the bind fails.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
    ) -> Result<Server, ServerError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let queue = Arc::new(AdmissionQueue::new(config.queue_capacity));
        let stats = Arc::new(ServerStats::default());
        let shutting_down = Arc::new(AtomicBool::new(false));

        let accept_thread = {
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            let shutting_down = Arc::clone(&shutting_down);
            let config = config.clone();
            thread::Builder::new()
                .name("dfr-server-accept".into())
                .spawn(move || accept_loop(listener, queue, stats, shutting_down, config))
                .expect("spawn accept thread")
        };

        let batcher_thread = {
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            let registry = Arc::clone(&registry);
            let config = config.clone();
            thread::Builder::new()
                .name("dfr-server-batcher".into())
                .spawn(move || batcher_loop(queue, registry, stats, config))
                .expect("spawn batcher thread")
        };

        Ok(Server {
            local_addr,
            registry,
            queue,
            stats,
            shutting_down,
            accept_thread: Some(accept_thread),
            batcher_thread: Some(batcher_thread),
        })
    }

    /// The bound address (with the resolved port when 0 was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The registry this server serves from — publish to it to hot-swap
    /// the model under live traffic.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// A snapshot of the serving counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Graceful drain: stops admitting (stragglers are answered
    /// [`Status::ShuttingDown`]), lets the batcher answer everything
    /// already admitted, and joins the accept and batcher threads.
    /// Idempotent; also runs on drop.
    ///
    /// Connection threads exit on their own — on client EOF, on the
    /// `ShuttingDown` rejection path, or at the idle timeout at the
    /// latest — and the [`StatsSnapshot::active_connections`] gauge
    /// reaching 0 is the observable "no leaked threads" signal the chaos
    /// soak asserts.
    pub fn shutdown(&mut self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Close admission first so readers answer ShuttingDown, then
        // wake the accept loop with a throwaway connection.
        self.queue.close();
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.batcher_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    queue: Arc<AdmissionQueue<Job>>,
    stats: Arc<ServerStats>,
    shutting_down: Arc<AtomicBool>,
    config: ServerConfig,
) {
    for stream in listener.incoming() {
        if shutting_down.load(Ordering::SeqCst) {
            break; // the waking connection (or any racer) is dropped
        }
        let Ok(stream) = stream else { continue };
        let conn_id = stats.connections.fetch_add(1, Ordering::Relaxed);
        let queue = Arc::clone(&queue);
        let stats = Arc::clone(&stats);
        let config = config.clone();
        // Detached: exits on client EOF, socket error, timeout reap, or
        // queue close — the idle timeout bounds how long it can linger.
        let _ = thread::Builder::new()
            .name("dfr-server-conn".into())
            .spawn(move || connection_loop(stream, conn_id, queue, stats, config));
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads frames off one connection, admits requests, and spawns the
/// paired writer draining pre-encoded response frames. Both halves carry
/// the idle timeout; either half timing out reaps the connection (once).
fn connection_loop(
    stream: TcpStream,
    conn_id: u64,
    queue: Arc<AdmissionQueue<Job>>,
    stats: Arc<ServerStats>,
    config: ServerConfig,
) {
    stats.active_connections.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    // One deadline for both halves: reads reap slow-loris senders, writes
    // reap clients that never drain their responses.
    let _ = stream.set_read_timeout(Some(config.idle_timeout));
    let _ = stream.set_write_timeout(Some(config.idle_timeout));
    let reaped = Arc::new(AtomicBool::new(false));

    let writer = match stream.try_clone() {
        Ok(write_half) => {
            let stats = Arc::clone(&stats);
            let reaped = Arc::clone(&reaped);
            let faults = config.faults.io_faults(conn_id, 1);
            let (reply_tx, reply_rx) = mpsc::channel::<Vec<u8>>();
            let handle = thread::Builder::new()
                .name("dfr-server-conn-writer".into())
                .spawn(move || {
                    let mut w = BufWriter::new(FaultyWrite::new(write_half, faults));
                    // Frames already carry their length prefix; write
                    // whole frames directly.
                    while let Ok(frame) = reply_rx.recv() {
                        use std::io::Write;
                        if let Err(e) = w.write_all(&frame).and_then(|()| w.flush()) {
                            if is_timeout(&e) {
                                stats.timeouts.fetch_add(1, Ordering::Relaxed);
                                reaped.store(true, Ordering::Relaxed);
                            } else {
                                stats.io_errors.fetch_add(1, Ordering::Relaxed);
                            }
                            break; // client gone or unresponsive
                        }
                    }
                });
            match handle {
                Ok(h) => Some((h, reply_tx)),
                Err(_) => None,
            }
        }
        Err(_) => None,
    };
    let Some((writer, reply_tx)) = writer else {
        stats.active_connections.fetch_sub(1, Ordering::Relaxed);
        return;
    };

    let mut reader = FaultyRead::new(&stream, config.faults.io_faults(conn_id, 0));
    let mut buf = Vec::new();
    let mut scratch = Vec::new();
    let retry_hint_ms = (config.batch_deadline.as_millis() as u32).max(1);
    loop {
        match read_frame(&mut reader, &mut buf, config.max_frame_body) {
            Ok(None) => break, // clean EOF
            Ok(Some(body)) => match decode_request(body) {
                Ok(req) => {
                    // Non-finite quarantine (`DESIGN.md` §15): a poisoned
                    // sample is rejected with a typed `BadInput` *before*
                    // admission, so it never occupies a queue slot, never
                    // reaches the batcher, and stays out of the admission
                    // ledger entirely. A 0-row series is the same class of
                    // client bug (the framing layer already refuses to
                    // decode one; this guard keeps the contract if the
                    // wire format ever grows a path around that check).
                    if req.series.rows() == 0
                        || !req.series.as_slice().iter().all(|v| v.is_finite())
                    {
                        stats.bad_input.fetch_add(1, Ordering::Relaxed);
                        let resp = Response::reject(req.request_id, Status::BadInput, 0);
                        encode_response(&resp, &mut scratch);
                        if reply_tx.send(scratch.clone()).is_err() {
                            break;
                        }
                        continue;
                    }
                    let job = Job {
                        request_id: req.request_id,
                        digest_pin: req.digest_pin,
                        series: req.series,
                        reply: reply_tx.clone(),
                    };
                    match queue.try_push(job) {
                        Ok(()) => {
                            stats.admitted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err((job, AdmitError::Full)) => {
                            stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
                            let resp =
                                Response::reject(job.request_id, Status::Busy, retry_hint_ms);
                            encode_response(&resp, &mut scratch);
                            if job.reply.send(scratch.clone()).is_err() {
                                break; // writer died; nothing can be answered
                            }
                        }
                        Err((job, AdmitError::Closed)) => {
                            stats.shutdown_rejected.fetch_add(1, Ordering::Relaxed);
                            let resp = Response::reject(job.request_id, Status::ShuttingDown, 0);
                            encode_response(&resp, &mut scratch);
                            let _ = job.reply.send(scratch.clone());
                            break;
                        }
                    }
                }
                Err(_) => {
                    // The frame boundary is intact, so the stream stays
                    // usable; answer Malformed and keep reading.
                    stats.malformed.fetch_add(1, Ordering::Relaxed);
                    let resp = Response::reject(0, Status::Malformed, 0);
                    encode_response(&resp, &mut scratch);
                    if reply_tx.send(scratch.clone()).is_err() {
                        break;
                    }
                }
            },
            Err(FrameError::Oversized { .. }) => {
                // The body was never consumed — the stream is desynced.
                // Best-effort rejection, then close.
                stats.frames_oversized.fetch_add(1, Ordering::Relaxed);
                stats.malformed.fetch_add(1, Ordering::Relaxed);
                let resp = Response::reject(0, Status::Malformed, 0);
                encode_response(&resp, &mut scratch);
                let _ = reply_tx.send(scratch.clone());
                break;
            }
            Err(FrameError::TruncatedFrame { .. }) => {
                // The peer vanished mid-frame; nothing to answer.
                stats.frames_truncated.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Err(FrameError::Io(e)) if is_timeout(&e) => {
                // The idle reaper: a silent or slow-loris connection is
                // disconnected instead of pinning this thread forever.
                stats.timeouts.fetch_add(1, Ordering::Relaxed);
                reaped.store(true, Ordering::Relaxed);
                break;
            }
            Err(FrameError::Io(_)) => {
                stats.io_errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Err(_) => break, // decode-layer errors cannot reach here
        }
    }
    // Dropping the last sender ends the writer once in-flight responses
    // (still referenced by queued Jobs) are answered and dropped.
    drop(reply_tx);
    let _ = stream.shutdown(std::net::Shutdown::Read);
    let _ = writer.join();
    if reaped.load(Ordering::Relaxed) {
        stats.reaped.fetch_add(1, Ordering::Relaxed);
    }
    stats.active_connections.fetch_sub(1, Ordering::Relaxed);
}

/// Drains the admission queue with the deadline coalescer and serves
/// each batch through per-digest sessions.
fn batcher_loop(
    queue: Arc<AdmissionQueue<Job>>,
    registry: Arc<ModelRegistry>,
    stats: Arc<ServerStats>,
    config: ServerConfig,
) {
    let mut sessions: HashMap<u64, ServeSession> = HashMap::new();
    let mut batch: Vec<Job> = Vec::new();
    let mut frame = Vec::new();
    let mut faults = config.faults.serve_faults();
    while queue.fill_batch(&mut batch, config.max_batch, config.batch_deadline) {
        stats.batches.fetch_add(1, Ordering::Relaxed);
        // One registry read per batch: a publish() lands exactly on a
        // batch boundary, never mid-batch.
        let active = registry.active();
        let active_digest = active.content_digest();

        // Partition by resolved digest, preserving admission order
        // within each digest (first-occurrence order across digests).
        let mut groups: Vec<(u64, Vec<Job>)> = Vec::new();
        for job in batch.drain(..) {
            let digest = if job.digest_pin == 0 {
                active_digest
            } else {
                job.digest_pin
            };
            if digest != active_digest && !registry.contains(digest) {
                stats.unknown_digest.fetch_add(1, Ordering::Relaxed);
                let resp = Response::reject(job.request_id, Status::UnknownDigest, 0);
                encode_response(&resp, &mut frame);
                let _ = job.reply.send(frame.clone());
                continue;
            }
            match groups.iter_mut().find(|(d, _)| *d == digest) {
                Some((_, jobs)) => jobs.push(job),
                None => groups.push((digest, vec![job])),
            }
        }

        for (digest, jobs) in groups {
            let model = if digest == active_digest {
                Arc::clone(&active)
            } else {
                match registry.get(digest) {
                    Some(m) => m,
                    None => {
                        // Retired between partitioning and serving.
                        for job in jobs {
                            stats.unknown_digest.fetch_add(1, Ordering::Relaxed);
                            let resp = Response::reject(job.request_id, Status::UnknownDigest, 0);
                            encode_response(&resp, &mut frame);
                            let _ = job.reply.send(frame.clone());
                        }
                        continue;
                    }
                }
            };
            let session = sessions.entry(digest).or_insert_with(|| {
                let mut b =
                    ServeSessionBuilder::shared(model).batch_plan(BatchPlan::new(config.max_batch));
                if let Some(t) = config.threads {
                    b = b.threads(t);
                }
                b.build()
            });
            serve_group(session, &jobs, &stats, &mut frame, &mut faults);
        }

        // Sessions for retired digests hold the last Arc to their model;
        // drop them so retirement actually frees parameters.
        sessions.retain(|digest, _| registry.contains(*digest));
    }
}

/// Serves one digest-homogeneous group and replies to every job, with
/// panic isolation at both levels:
///
/// * the **batched** serve runs under `catch_unwind` — an unwind (or an
///   ordinary per-sample error) falls back to per-sample serving, after
///   resetting the session's workspaces so a half-written buffer can
///   never surface in a later response;
/// * each **per-sample** serve runs under its own `catch_unwind` — a
///   panicking sample is quarantined with a typed [`Status::Internal`]
///   rejection while every other sample still gets its bitwise-correct
///   answer.
///
/// Replies are sent only *after* a serve succeeds, so an unwind can
/// never leave a client double-answered or half-answered.
fn serve_group(
    session: &mut ServeSession,
    jobs: &[Job],
    stats: &ServerStats,
    frame: &mut Vec<u8>,
    faults: &mut Option<ServeFaults>,
) {
    let series: Vec<Matrix> = jobs.iter().map(|j| j.series.clone()).collect();
    let batched = catch_unwind(AssertUnwindSafe(|| {
        if let Some(f) = faults.as_mut() {
            f.maybe_panic_batch();
        }
        session.predict_batch(&series).map(|result| {
            let probs: Vec<Vec<f64>> = (0..result.len())
                .map(|i| result.probabilities_of(i).to_vec())
                .collect();
            (result.predictions().to_vec(), probs, result.digest())
        })
    }));
    match batched {
        Ok(Ok((predictions, probabilities, digest))) => {
            for ((job, class), probs) in jobs.iter().zip(predictions).zip(probabilities) {
                stats.served.fetch_add(1, Ordering::Relaxed);
                let resp = Response::ok(job.request_id, digest, class, probs);
                encode_response(&resp, frame);
                let _ = job.reply.send(frame.clone());
            }
            return;
        }
        // At least one sample is bad; isolate it below so healthy
        // requests still get answers.
        Ok(Err(_)) => {}
        Err(_) => {
            // A panic mid-batch: the session's buffers may be
            // half-written — rebuild them before trusting any result.
            stats.panics_caught.fetch_add(1, Ordering::Relaxed);
            session.reset();
        }
    }
    for job in jobs {
        let one = catch_unwind(AssertUnwindSafe(|| {
            if let Some(f) = faults.as_mut() {
                f.maybe_panic_sample();
            }
            session
                .predict_one(&job.series)
                .map(|p| (p.class(), p.probabilities().to_vec(), p.digest()))
        }));
        match one {
            Ok(Ok((class, probs, digest))) => {
                stats.served.fetch_add(1, Ordering::Relaxed);
                let resp = Response::ok(job.request_id, digest, class, probs);
                encode_response(&resp, frame);
                let _ = job.reply.send(frame.clone());
            }
            Ok(Err(_)) => {
                stats.predict_failures.fetch_add(1, Ordering::Relaxed);
                let resp = Response::reject(job.request_id, Status::PredictFailed, 0);
                encode_response(&resp, frame);
                let _ = job.reply.send(frame.clone());
            }
            Err(_) => {
                // Quarantine: this sample's serve unwound — typed
                // Internal rejection, fresh workspaces, next sample.
                stats.panics_caught.fetch_add(1, Ordering::Relaxed);
                stats.quarantined.fetch_add(1, Ordering::Relaxed);
                session.reset();
                let resp = Response::reject(job.request_id, Status::Internal, 0);
                encode_response(&resp, frame);
                let _ = job.reply.send(frame.clone());
            }
        }
    }
}
