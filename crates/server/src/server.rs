//! The serving loop: accept → frame → admit → coalesce → predict →
//! respond.
//!
//! Thread shape (all on `std` primitives — no async runtime):
//!
//! * one **accept** thread owning the listener;
//! * per connection, a detached **reader** (frames in, requests into the
//!   admission queue) and a detached **writer** (pre-encoded response
//!   frames out, fed over an `mpsc` channel so readers and the batcher
//!   never block on a slow client socket);
//! * one **batcher** thread draining the queue with the deadline
//!   coalescer and serving each batch through per-digest
//!   [`ServeSession`]s.
//!
//! Determinism under hot-swap: the batcher resolves the active model
//! **once per batch**, so a [`ModelRegistry::publish`] lands exactly on
//! a batch boundary — every request in a batch is served by one model
//! and stamped with its digest. Within a digest the batch is served in
//! admission order through `ServeSession::predict_batch`, whose results
//! are bitwise identical to any other grouping of the same samples
//! (`DESIGN.md` §11), so coalescing never changes a client's bytes.

use crate::error::ServerError;
use crate::frame::{decode_request, encode_response, read_frame, FrameError, Response, Status};
use crate::queue::{AdmissionQueue, AdmitError};
use crate::registry::ModelRegistry;
use dfr_linalg::Matrix;
use dfr_serve::{BatchPlan, ServeSession, ServeSessionBuilder};
use std::collections::HashMap;
use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Most samples one coalesced batch may carry (also the serving
    /// sessions' `BatchPlan` bound). Default 64.
    pub max_batch: usize,
    /// Latency budget of the batch coalescer: a request waits at most
    /// this long for companions before its batch is served. Default 2 ms.
    pub batch_deadline: Duration,
    /// Admission queue capacity; requests beyond it are rejected with
    /// `Busy` + a retry hint instead of queueing unboundedly. Default
    /// 1024.
    pub queue_capacity: usize,
    /// Cap on one request frame's body length. Default
    /// [`crate::frame::DEFAULT_MAX_BODY`].
    pub max_frame_body: usize,
    /// Pool width pinned onto the serving sessions (`None` inherits the
    /// ambient `dfr_pool` sizing — `DFR_THREADS`, then available cores).
    pub threads: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_batch: 64,
            batch_deadline: Duration::from_millis(2),
            queue_capacity: 1024,
            max_frame_body: crate::frame::DEFAULT_MAX_BODY,
            threads: None,
        }
    }
}

/// Monotonic serving counters (relaxed atomics — informational).
#[derive(Debug, Default)]
pub struct ServerStats {
    connections: AtomicU64,
    admitted: AtomicU64,
    rejected_busy: AtomicU64,
    malformed: AtomicU64,
    unknown_digest: AtomicU64,
    batches: AtomicU64,
    served: AtomicU64,
    predict_failures: AtomicU64,
}

/// A point-in-time copy of [`ServerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests rejected with `Busy` (queue full).
    pub rejected_busy: u64,
    /// Frames or requests that failed to decode.
    pub malformed: u64,
    /// Requests pinning an unregistered digest.
    pub unknown_digest: u64,
    /// Batches the coalescer served.
    pub batches: u64,
    /// Requests answered `Ok`.
    pub served: u64,
    /// Requests answered `PredictFailed`.
    pub predict_failures: u64,
}

impl ServerStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            unknown_digest: self.unknown_digest.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            predict_failures: self.predict_failures.load(Ordering::Relaxed),
        }
    }
}

/// One admitted request, carrying its reply channel.
struct Job {
    request_id: u64,
    digest_pin: u64,
    series: Matrix,
    reply: mpsc::Sender<Vec<u8>>,
}

/// The TCP serving front-end. Constructed with [`Server::bind`]; the
/// returned handle owns the accept and batcher threads and shuts both
/// down on [`Server::shutdown`] or drop.
pub struct Server {
    local_addr: SocketAddr,
    registry: Arc<ModelRegistry>,
    queue: Arc<AdmissionQueue<Job>>,
    stats: Arc<ServerStats>,
    shutting_down: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    batcher_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept and batcher threads serving models from `registry`.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if the bind fails.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
    ) -> Result<Server, ServerError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let queue = Arc::new(AdmissionQueue::new(config.queue_capacity));
        let stats = Arc::new(ServerStats::default());
        let shutting_down = Arc::new(AtomicBool::new(false));

        let accept_thread = {
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            let shutting_down = Arc::clone(&shutting_down);
            let config = config.clone();
            thread::Builder::new()
                .name("dfr-server-accept".into())
                .spawn(move || accept_loop(listener, queue, stats, shutting_down, config))
                .expect("spawn accept thread")
        };

        let batcher_thread = {
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            let registry = Arc::clone(&registry);
            let config = config.clone();
            thread::Builder::new()
                .name("dfr-server-batcher".into())
                .spawn(move || batcher_loop(queue, registry, stats, config))
                .expect("spawn batcher thread")
        };

        Ok(Server {
            local_addr,
            registry,
            queue,
            stats,
            shutting_down,
            accept_thread: Some(accept_thread),
            batcher_thread: Some(batcher_thread),
        })
    }

    /// The bound address (with the resolved port when 0 was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The registry this server serves from — publish to it to hot-swap
    /// the model under live traffic.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// A snapshot of the serving counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Stops admitting, drains the queue, and joins the accept and
    /// batcher threads. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Close admission first so readers answer ShuttingDown, then
        // wake the accept loop with a throwaway connection.
        self.queue.close();
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.batcher_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    queue: Arc<AdmissionQueue<Job>>,
    stats: Arc<ServerStats>,
    shutting_down: Arc<AtomicBool>,
    config: ServerConfig,
) {
    for stream in listener.incoming() {
        if shutting_down.load(Ordering::SeqCst) {
            break; // the waking connection (or any racer) is dropped
        }
        let Ok(stream) = stream else { continue };
        stats.connections.fetch_add(1, Ordering::Relaxed);
        let queue = Arc::clone(&queue);
        let stats = Arc::clone(&stats);
        let config = config.clone();
        // Detached: exits on client EOF, socket error, or queue close.
        let _ = thread::Builder::new()
            .name("dfr-server-conn".into())
            .spawn(move || connection_loop(stream, queue, stats, config));
    }
}

/// Reads frames off one connection, admits requests, and spawns the
/// paired writer draining pre-encoded response frames.
fn connection_loop(
    stream: TcpStream,
    queue: Arc<AdmissionQueue<Job>>,
    stats: Arc<ServerStats>,
    config: ServerConfig,
) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (reply_tx, reply_rx) = mpsc::channel::<Vec<u8>>();
    let writer = thread::Builder::new()
        .name("dfr-server-conn-writer".into())
        .spawn(move || {
            let mut w = BufWriter::new(write_half);
            // Frames already carry their length prefix; write_frame is
            // for bodies, so write whole frames directly.
            while let Ok(frame) = reply_rx.recv() {
                use std::io::Write;
                if w.write_all(&frame).and_then(|()| w.flush()).is_err() {
                    break; // client gone; drain nothing further
                }
            }
        });

    let mut read_half = &stream;
    let mut buf = Vec::new();
    let mut scratch = Vec::new();
    let retry_hint_ms = (config.batch_deadline.as_millis() as u32).max(1);
    loop {
        match read_frame(&mut read_half, &mut buf, config.max_frame_body) {
            Ok(None) => break, // clean EOF
            Ok(Some(body)) => match decode_request(body) {
                Ok(req) => {
                    let job = Job {
                        request_id: req.request_id,
                        digest_pin: req.digest_pin,
                        series: req.series,
                        reply: reply_tx.clone(),
                    };
                    match queue.try_push(job) {
                        Ok(()) => {
                            stats.admitted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err((job, AdmitError::Full)) => {
                            stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
                            let resp =
                                Response::reject(job.request_id, Status::Busy, retry_hint_ms);
                            encode_response(&resp, &mut scratch);
                            let _ = job.reply.send(scratch.clone());
                        }
                        Err((job, AdmitError::Closed)) => {
                            let resp = Response::reject(job.request_id, Status::ShuttingDown, 0);
                            encode_response(&resp, &mut scratch);
                            let _ = job.reply.send(scratch.clone());
                            break;
                        }
                    }
                }
                Err(_) => {
                    // The frame boundary is intact, so the stream stays
                    // usable; answer Malformed and keep reading.
                    stats.malformed.fetch_add(1, Ordering::Relaxed);
                    let resp = Response::reject(0, Status::Malformed, 0);
                    encode_response(&resp, &mut scratch);
                    let _ = reply_tx.send(scratch.clone());
                }
            },
            Err(FrameError::Oversized { .. }) => {
                // The body was never consumed — the stream is desynced.
                // Best-effort rejection, then close.
                stats.malformed.fetch_add(1, Ordering::Relaxed);
                let resp = Response::reject(0, Status::Malformed, 0);
                encode_response(&resp, &mut scratch);
                let _ = reply_tx.send(scratch.clone());
                break;
            }
            Err(_) => break, // truncated mid-frame or socket error
        }
    }
    // Dropping the last sender ends the writer once in-flight responses
    // (still referenced by queued Jobs) are answered and dropped.
    drop(reply_tx);
    let _ = stream.shutdown(std::net::Shutdown::Read);
    if let Ok(w) = writer {
        let _ = w.join();
    }
}

/// Drains the admission queue with the deadline coalescer and serves
/// each batch through per-digest sessions.
fn batcher_loop(
    queue: Arc<AdmissionQueue<Job>>,
    registry: Arc<ModelRegistry>,
    stats: Arc<ServerStats>,
    config: ServerConfig,
) {
    let mut sessions: HashMap<u64, ServeSession> = HashMap::new();
    let mut batch: Vec<Job> = Vec::new();
    let mut frame = Vec::new();
    while queue.fill_batch(&mut batch, config.max_batch, config.batch_deadline) {
        stats.batches.fetch_add(1, Ordering::Relaxed);
        // One registry read per batch: a publish() lands exactly on a
        // batch boundary, never mid-batch.
        let active = registry.active();
        let active_digest = active.content_digest();

        // Partition by resolved digest, preserving admission order
        // within each digest (first-occurrence order across digests).
        let mut groups: Vec<(u64, Vec<Job>)> = Vec::new();
        for job in batch.drain(..) {
            let digest = if job.digest_pin == 0 {
                active_digest
            } else {
                job.digest_pin
            };
            if digest != active_digest && !registry.contains(digest) {
                stats.unknown_digest.fetch_add(1, Ordering::Relaxed);
                let resp = Response::reject(job.request_id, Status::UnknownDigest, 0);
                encode_response(&resp, &mut frame);
                let _ = job.reply.send(frame.clone());
                continue;
            }
            match groups.iter_mut().find(|(d, _)| *d == digest) {
                Some((_, jobs)) => jobs.push(job),
                None => groups.push((digest, vec![job])),
            }
        }

        for (digest, jobs) in groups {
            let model = if digest == active_digest {
                Arc::clone(&active)
            } else {
                match registry.get(digest) {
                    Some(m) => m,
                    None => {
                        // Retired between partitioning and serving.
                        for job in jobs {
                            stats.unknown_digest.fetch_add(1, Ordering::Relaxed);
                            let resp = Response::reject(job.request_id, Status::UnknownDigest, 0);
                            encode_response(&resp, &mut frame);
                            let _ = job.reply.send(frame.clone());
                        }
                        continue;
                    }
                }
            };
            let session = sessions.entry(digest).or_insert_with(|| {
                let mut b =
                    ServeSessionBuilder::shared(model).batch_plan(BatchPlan::new(config.max_batch));
                if let Some(t) = config.threads {
                    b = b.threads(t);
                }
                b.build()
            });
            serve_group(session, &jobs, &stats, &mut frame);
        }

        // Sessions for retired digests hold the last Arc to their model;
        // drop them so retirement actually frees parameters.
        sessions.retain(|digest, _| registry.contains(*digest));
    }
}

/// Serves one digest-homogeneous group and replies to every job.
fn serve_group(session: &mut ServeSession, jobs: &[Job], stats: &ServerStats, frame: &mut Vec<u8>) {
    let series: Vec<Matrix> = jobs.iter().map(|j| j.series.clone()).collect();
    match session.predict_batch(&series) {
        Ok(result) => {
            for (i, job) in jobs.iter().enumerate() {
                stats.served.fetch_add(1, Ordering::Relaxed);
                let resp = Response::ok(
                    job.request_id,
                    result.digest(),
                    result.predictions()[i],
                    result.probabilities_of(i).to_vec(),
                );
                encode_response(&resp, frame);
                let _ = job.reply.send(frame.clone());
            }
        }
        Err(_) => {
            // At least one sample is bad; isolate it by serving the
            // group per-sample so healthy requests still get answers.
            for job in jobs {
                match session.predict_one(&job.series) {
                    Ok(pred) => {
                        stats.served.fetch_add(1, Ordering::Relaxed);
                        let resp = Response::ok(
                            job.request_id,
                            pred.digest(),
                            pred.class(),
                            pred.probabilities().to_vec(),
                        );
                        encode_response(&resp, frame);
                        let _ = job.reply.send(frame.clone());
                    }
                    Err(_) => {
                        stats.predict_failures.fetch_add(1, Ordering::Relaxed);
                        let resp = Response::reject(job.request_id, Status::PredictFailed, 0);
                        encode_response(&resp, frame);
                        let _ = job.reply.send(frame.clone());
                    }
                }
            }
        }
    }
}
