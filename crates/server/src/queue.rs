//! The bounded admission queue with deadline-based batch coalescing.
//!
//! Admission is the server's backpressure boundary: [`AdmissionQueue`]
//! holds at most `capacity` pending requests, and [`AdmissionQueue::try_push`]
//! **fails fast** when full instead of queueing unboundedly — the
//! connection layer turns that into a `Busy` response with a retry hint,
//! so overload is visible to clients instead of silently inflating
//! latency.
//!
//! The consuming side is the batch coalescer:
//! [`AdmissionQueue::fill_batch`] blocks until work exists, then keeps
//! filling the batch until either `max_batch` items are collected or the
//! **oldest** collected item has waited `budget` — the deadline is
//! `first_item.enqueued_at + budget`, so the latency a request can lose
//! to coalescing is bounded by the budget regardless of traffic shape.
//! An idle queue sleeps on a condvar (no spinning); a saturated queue
//! fills whole batches without waiting at all.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why [`AdmissionQueue::try_push`] refused an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The queue is at capacity — explicit backpressure; retry later.
    Full,
    /// The queue was closed (server shutting down).
    Closed,
}

struct Inner<T> {
    items: VecDeque<(Instant, T)>,
    closed: bool,
}

/// A bounded MPSC admission queue with deadline-based batch draining.
pub struct AdmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    nonempty: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// Creates a queue admitting at most `capacity` pending items
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            nonempty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth (racy — informational only).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty (racy — informational only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to admit `item`, stamping its arrival time.
    ///
    /// # Errors
    ///
    /// [`AdmitError::Full`] at capacity (the item is returned to the
    /// caller untouched via the error — callers still own their request
    /// state and can answer `Busy`), [`AdmitError::Closed`] after
    /// [`AdmissionQueue::close`].
    pub fn try_push(&self, item: T) -> Result<(), (T, AdmitError)> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err((item, AdmitError::Closed));
        }
        if inner.items.len() >= self.capacity {
            return Err((item, AdmitError::Full));
        }
        inner.items.push_back((Instant::now(), item));
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Drains up to `max_batch` items into `out` (cleared first),
    /// coalescing under the latency `budget`: blocks until at least one
    /// item exists, then keeps collecting until the batch is full or the
    /// **first** collected item's age reaches `budget`.
    ///
    /// Returns `false` when the queue is closed **and** drained — the
    /// consumer's signal to exit. A `true` return always carries at least
    /// one item.
    pub fn fill_batch(&self, out: &mut Vec<T>, max_batch: usize, budget: Duration) -> bool {
        let max_batch = max_batch.max(1);
        out.clear();
        let mut inner = self.inner.lock().unwrap();
        // Phase 1: wait for any work at all.
        loop {
            if let Some((enqueued_at, item)) = inner.items.pop_front() {
                out.push(item);
                // Deadline keyed to the oldest member of THIS batch: its
                // total coalescing delay is what the budget bounds.
                let deadline = enqueued_at + budget;
                // Phase 2: coalesce until full or the deadline passes.
                while out.len() < max_batch {
                    if let Some((_, item)) = inner.items.pop_front() {
                        out.push(item);
                        continue;
                    }
                    if inner.closed {
                        return true; // serve what we have; exit next call
                    }
                    let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                        break; // deadline passed: serve the batch as-is
                    };
                    if remaining.is_zero() {
                        break;
                    }
                    let (guard, timeout) = self.nonempty.wait_timeout(inner, remaining).unwrap();
                    inner = guard;
                    if timeout.timed_out() && inner.items.is_empty() {
                        break;
                    }
                }
                return true;
            }
            if inner.closed {
                return false;
            }
            inner = self.nonempty.wait(inner).unwrap();
        }
    }

    /// Closes the queue: pending items remain drainable, new pushes fail
    /// with [`AdmitError::Closed`], and blocked consumers wake up.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.nonempty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn backpressure_is_explicit_at_capacity() {
        let q = AdmissionQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err((item, AdmitError::Full)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        // Draining frees capacity again.
        let mut out = Vec::new();
        assert!(q.fill_batch(&mut out, 8, Duration::ZERO));
        assert_eq!(out, vec![1, 2]);
        q.try_push(3).unwrap();
    }

    #[test]
    fn fill_batch_caps_at_max_batch_in_fifo_order() {
        let q = AdmissionQueue::new(16);
        for i in 0..10 {
            q.try_push(i).unwrap();
        }
        let mut out = Vec::new();
        assert!(q.fill_batch(&mut out, 4, Duration::from_millis(50)));
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert!(q.fill_batch(&mut out, 4, Duration::from_millis(50)));
        assert_eq!(out, vec![4, 5, 6, 7]);
        assert!(q.fill_batch(&mut out, 4, Duration::from_millis(0)));
        assert_eq!(out, vec![8, 9]);
    }

    #[test]
    fn coalescer_waits_out_the_budget_for_late_arrivals() {
        let q = Arc::new(AdmissionQueue::new(16));
        q.try_push(0).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(20));
                q.try_push(1).unwrap();
            })
        };
        let mut out = Vec::new();
        // Generous budget: the batch should pick up the late arrival
        // instead of serving the first item alone.
        assert!(q.fill_batch(&mut out, 2, Duration::from_secs(5)));
        producer.join().unwrap();
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn coalescer_deadline_bounds_the_wait() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(4);
        q.try_push(7).unwrap();
        let start = Instant::now();
        let mut out = Vec::new();
        assert!(q.fill_batch(&mut out, 4, Duration::from_millis(30)));
        assert_eq!(out, vec![7]);
        // The single item must be released roughly at the budget, not
        // held indefinitely waiting for a full batch.
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "deadline did not bound the coalescing wait"
        );
    }

    #[test]
    fn close_wakes_consumers_and_drains_leftovers() {
        let q: Arc<AdmissionQueue<u32>> = Arc::new(AdmissionQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut out = Vec::new();
                let mut seen = Vec::new();
                while q.fill_batch(&mut out, 4, Duration::from_millis(1)) {
                    seen.extend(out.iter().copied());
                }
                seen
            })
        };
        thread::sleep(Duration::from_millis(10));
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert!(matches!(q.try_push(3), Err((3, AdmitError::Closed))));
        let seen = consumer.join().unwrap();
        assert_eq!(seen, vec![1, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = AdmissionQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert!(matches!(q.try_push(2), Err((2, AdmitError::Full))));
    }

    /// Concurrent pushers racing `close()`: every push must resolve to
    /// exactly one of Ok / Full / Closed (the item coming back on the
    /// errors), and the drained count must equal the Ok count — no item
    /// admitted-then-lost, none duplicated.
    #[test]
    fn concurrent_pushers_racing_close_lose_nothing() {
        for round in 0..20u32 {
            let q: Arc<AdmissionQueue<u32>> = Arc::new(AdmissionQueue::new(8));
            let pushers: Vec<_> = (0..4u32)
                .map(|p| {
                    let q = Arc::clone(&q);
                    thread::spawn(move || {
                        let mut admitted = Vec::new();
                        for i in 0..50u32 {
                            let item = p * 1000 + i;
                            match q.try_push(item) {
                                Ok(()) => admitted.push(item),
                                Err((returned, AdmitError::Full)) => {
                                    assert_eq!(returned, item);
                                    thread::yield_now();
                                }
                                Err((returned, AdmitError::Closed)) => {
                                    assert_eq!(returned, item);
                                    break;
                                }
                            }
                        }
                        admitted
                    })
                })
                .collect();
            let closer = {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    // Vary the race window across rounds.
                    if round % 2 == 0 {
                        thread::yield_now();
                    } else {
                        thread::sleep(Duration::from_micros(u64::from(round) * 50));
                    }
                    q.close();
                })
            };
            let drainer = {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut out = Vec::new();
                    let mut seen = Vec::new();
                    while q.fill_batch(&mut out, 8, Duration::from_millis(1)) {
                        seen.extend(out.iter().copied());
                    }
                    seen
                })
            };
            let mut admitted: Vec<u32> = pushers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            closer.join().unwrap();
            let mut drained = drainer.join().unwrap();
            admitted.sort_unstable();
            drained.sort_unstable();
            assert_eq!(
                admitted, drained,
                "round {round}: admitted set must equal drained set"
            );
            assert!(q.is_empty());
        }
    }

    /// `fill_batch` boundary behavior: a zero budget with items queued
    /// returns immediately with what exists; a closed queue with
    /// leftovers serves them (true) before signalling exit (false); the
    /// exit signal is sticky.
    #[test]
    fn fill_batch_deadlines_at_queue_boundaries() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let mut out = Vec::new();
        let start = Instant::now();
        assert!(q.fill_batch(&mut out, 8, Duration::ZERO));
        assert_eq!(out, vec![1, 2]);
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "zero budget must not wait for a full batch"
        );

        q.try_push(3).unwrap();
        q.close();
        // Leftovers are still served after close…
        assert!(q.fill_batch(&mut out, 8, Duration::from_secs(5)));
        assert_eq!(out, vec![3]);
        // …and only then does the consumer get the exit signal, which
        // stays down and clears the batch.
        assert!(!q.fill_batch(&mut out, 8, Duration::from_secs(5)));
        assert!(out.is_empty());
        assert!(!q.fill_batch(&mut out, 8, Duration::ZERO));
    }

    /// The Full→returned-item contract under contention: with capacity
    /// 1, distinct values pushed from many threads, every rejected push
    /// hands back exactly the value it was given.
    #[test]
    fn full_returns_the_exact_item_under_contention() {
        let q: Arc<AdmissionQueue<u64>> = Arc::new(AdmissionQueue::new(1));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let pushers: Vec<_> = (0..4u64)
            .map(|p| {
                let q = Arc::clone(&q);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut ok = 0u64;
                    for i in 0..200u64 {
                        if stop.load(std::sync::atomic::Ordering::Relaxed) {
                            break;
                        }
                        let item = p << 32 | i;
                        match q.try_push(item) {
                            Ok(()) => ok += 1,
                            Err((returned, AdmitError::Full)) => assert_eq!(
                                returned, item,
                                "Full must return the rejected item itself"
                            ),
                            Err((_, AdmitError::Closed)) => unreachable!("never closed here"),
                        }
                    }
                    ok
                })
            })
            .collect();
        let drainer = {
            let q = Arc::clone(&q);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut out = Vec::new();
                let mut drained = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    if q.fill_batch(&mut out, 1, Duration::ZERO) {
                        drained += out.len() as u64;
                    }
                }
                // Final sweep after the pushers stopped.
                while !q.is_empty() && q.fill_batch(&mut out, 4, Duration::ZERO) {
                    drained += out.len() as u64;
                }
                drained
            })
        };
        let admitted: u64 = pushers.into_iter().map(|h| h.join().unwrap()).sum();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        // Unblock the drainer if it is parked on an empty queue.
        q.close();
        let drained = drainer.join().unwrap();
        assert_eq!(admitted, drained, "every admitted item is drained once");
    }
}
