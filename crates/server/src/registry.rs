//! The digest-keyed model registry with atomic hot-swap.
//!
//! Every [`FrozenModel`] is keyed by its content digest (the FNV-1a-64
//! trailer of its byte layout), so "which model served this request" is
//! always answerable from a response's `digest` field and a retrained
//! model is a *new* key — publishing can never silently mutate what an
//! old digest pin resolves to.
//!
//! [`ModelRegistry::publish`] registers and activates in one write-lock
//! critical section: requests batched before the swap serve the old
//! model, requests batched after serve the new one, and no batch ever
//! observes a half-updated registry. Old models stay resolvable (for
//! clients that pinned their digest) until explicitly
//! [retired](ModelRegistry::retire); retiring the *active* model is
//! refused so live traffic is never left without a model.

use crate::error::ServerError;
use dfr_serve::FrozenModel;
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, RwLock};

/// File name of the active-head marker inside a persisted store.
const ACTIVE_FILE: &str = "ACTIVE";
/// Extension of persisted model files (`model-<digest:016x>.dfrm`).
const MODEL_EXT: &str = "dfrm";

struct Inner {
    models: HashMap<u64, Arc<FrozenModel>>,
    active: u64,
}

/// A concurrent, digest-keyed store of frozen models with one *active*
/// model serving unpinned traffic.
pub struct ModelRegistry {
    inner: RwLock<Inner>,
}

impl ModelRegistry {
    /// Creates a registry with `model` registered and active.
    pub fn new(model: FrozenModel) -> Self {
        let model = Arc::new(model);
        let digest = model.content_digest();
        let mut models = HashMap::new();
        models.insert(digest, model);
        ModelRegistry {
            inner: RwLock::new(Inner {
                models,
                active: digest,
            }),
        }
    }

    /// Registers `model` without activating it, returning its digest.
    /// Re-registering an identical model is a no-op (same digest, same
    /// bytes).
    pub fn register(&self, model: FrozenModel) -> u64 {
        let model = Arc::new(model);
        let digest = model.content_digest();
        self.inner
            .write()
            .unwrap()
            .models
            .entry(digest)
            .or_insert(model);
        digest
    }

    /// Registers `model` **and** makes it the active model, atomically —
    /// the hot-swap entry point for a freshly retrained model. Returns
    /// its digest.
    pub fn publish(&self, model: FrozenModel) -> u64 {
        let model = Arc::new(model);
        let digest = model.content_digest();
        let mut inner = self.inner.write().unwrap();
        inner.models.entry(digest).or_insert(model);
        inner.active = digest;
        digest
    }

    /// Makes an already-registered model the active one.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownDigest`] if nothing is registered under
    /// `digest`.
    pub fn activate(&self, digest: u64) -> Result<(), ServerError> {
        let mut inner = self.inner.write().unwrap();
        if !inner.models.contains_key(&digest) {
            return Err(ServerError::UnknownDigest { digest });
        }
        inner.active = digest;
        Ok(())
    }

    /// The active model (always present — the registry is constructed
    /// with one and the active model cannot be retired).
    pub fn active(&self) -> Arc<FrozenModel> {
        let inner = self.inner.read().unwrap();
        Arc::clone(
            inner
                .models
                .get(&inner.active)
                .expect("active model is always registered"),
        )
    }

    /// Digest of the active model.
    pub fn active_digest(&self) -> u64 {
        self.inner.read().unwrap().active
    }

    /// Looks up a model by digest.
    pub fn get(&self, digest: u64) -> Option<Arc<FrozenModel>> {
        self.inner.read().unwrap().models.get(&digest).cloned()
    }

    /// Resolves a request's digest pin: 0 means "the active model",
    /// anything else must be registered.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownDigest`] for an unregistered non-zero pin.
    pub fn resolve(&self, digest_pin: u64) -> Result<Arc<FrozenModel>, ServerError> {
        if digest_pin == 0 {
            return Ok(self.active());
        }
        self.get(digest_pin)
            .ok_or(ServerError::UnknownDigest { digest: digest_pin })
    }

    /// Whether a model is registered under `digest`.
    pub fn contains(&self, digest: u64) -> bool {
        self.inner.read().unwrap().models.contains_key(&digest)
    }

    /// Removes a retired model so pinned clients get `UnknownDigest`
    /// instead of stale parameters.
    ///
    /// # Errors
    ///
    /// [`ServerError::RetireActive`] when `digest` is the active model
    /// (activate a replacement first), [`ServerError::UnknownDigest`]
    /// when nothing is registered under it.
    pub fn retire(&self, digest: u64) -> Result<(), ServerError> {
        let mut inner = self.inner.write().unwrap();
        if digest == inner.active {
            return Err(ServerError::RetireActive { digest });
        }
        if inner.models.remove(&digest).is_none() {
            return Err(ServerError::UnknownDigest { digest });
        }
        Ok(())
    }

    /// All registered digests, sorted (deterministic listing).
    pub fn digests(&self) -> Vec<u64> {
        let mut d: Vec<u64> = self.inner.read().unwrap().models.keys().copied().collect();
        d.sort_unstable();
        d
    }

    /// Persists every registered model plus the active head to `dir`
    /// (created if missing), crash-safely: each file is written to a
    /// temporary name, synced, then atomically renamed into place, so a
    /// kill at any instant leaves either the old file or the new file —
    /// never a torn one. Models are written as their versioned,
    /// digest-trailed byte layout (`model-<digest:016x>.dfrm`); the
    /// `ACTIVE` head file names the active digest and is written last,
    /// after every model it could point at is durable.
    ///
    /// Stale files from earlier persists are left in place (they are
    /// valid older models and keep digest-pinned reloads working).
    ///
    /// # Errors
    ///
    /// [`ServerError::Store`] naming the file that failed.
    pub fn persist_to(&self, dir: impl AsRef<Path>) -> Result<PersistReport, ServerError> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir).map_err(|e| store_err("create store dir", dir, &e))?;
        // Snapshot under the read lock, write outside it: persistence
        // must not stall admission or hot-swaps. The models AND the
        // active head must be captured in this single critical section —
        // reading them under separate lock acquisitions would let a
        // racing `publish` slip between them, and the persisted `ACTIVE`
        // head could then name a digest whose model file was never
        // written (an unloadable store that silently falls back). The
        // racing publish/persist test below pins this invariant.
        let (models, active) = {
            let inner = self.inner.read().unwrap();
            let models: Vec<Arc<FrozenModel>> = inner.models.values().map(Arc::clone).collect();
            (models, inner.active)
        };
        let mut digests: Vec<u64> = Vec::with_capacity(models.len());
        for model in &models {
            let digest = model.content_digest();
            let path = dir.join(format!("model-{digest:016x}.{MODEL_EXT}"));
            write_atomically(&path, &model.to_bytes())?;
            digests.push(digest);
        }
        // The head goes last: a crash before this line leaves the
        // previous (still valid) head in place.
        write_atomically(
            &dir.join(ACTIVE_FILE),
            format!("{active:016x}\n").as_bytes(),
        )?;
        sync_dir(dir);
        digests.sort_unstable();
        Ok(PersistReport {
            digests,
            skipped: Vec::new(),
            active,
            active_fallback: false,
        })
    }

    /// Rebuilds a registry from a directory written by
    /// [`persist_to`](Self::persist_to), verifying every model twice: the
    /// byte layout's own digest trailer must check out
    /// (`FrozenModel::from_bytes`) *and* the recomputed content digest
    /// must match the digest in the file name. Corrupt, truncated or
    /// misnamed files are skipped and listed in the report instead of
    /// failing the reload, so one bad file can never take recovery down
    /// with it. The `ACTIVE` head is restored when it names a loaded
    /// model; otherwise the smallest loaded digest becomes active and
    /// the report flags the fallback.
    ///
    /// # Errors
    ///
    /// [`ServerError::Store`] when the directory cannot be read or not a
    /// single valid model survives verification.
    pub fn load_from(dir: impl AsRef<Path>) -> Result<(ModelRegistry, PersistReport), ServerError> {
        let dir = dir.as_ref();
        let entries = fs::read_dir(dir).map_err(|e| store_err("read store dir", dir, &e))?;
        let mut models: HashMap<u64, Arc<FrozenModel>> = HashMap::new();
        let mut skipped: Vec<(String, String)> = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(named_digest) = model_file_digest(&name) else {
                continue; // not a model file (ACTIVE, temp leftovers, …)
            };
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    skipped.push((name, format!("unreadable: {e}")));
                    continue;
                }
            };
            match FrozenModel::from_bytes(&bytes) {
                Ok(model) if model.content_digest() == named_digest => {
                    models.insert(named_digest, Arc::new(model));
                }
                Ok(model) => skipped.push((
                    name,
                    format!(
                        "digest mismatch: file named {named_digest:016x}, content is {:016x}",
                        model.content_digest()
                    ),
                )),
                Err(e) => skipped.push((name, format!("rejected: {e}"))),
            }
        }
        let mut digests: Vec<u64> = models.keys().copied().collect();
        digests.sort_unstable();
        let Some(&fallback) = digests.first() else {
            return Err(ServerError::Store {
                detail: format!(
                    "no valid model in {} ({} file(s) skipped)",
                    dir.display(),
                    skipped.len()
                ),
            });
        };
        let head = fs::read_to_string(dir.join(ACTIVE_FILE))
            .ok()
            .and_then(|s| u64::from_str_radix(s.trim(), 16).ok())
            .filter(|d| models.contains_key(d));
        let active_fallback = head.is_none();
        let active = head.unwrap_or(fallback);
        let registry = ModelRegistry {
            inner: RwLock::new(Inner { models, active }),
        };
        Ok((
            registry,
            PersistReport {
                digests,
                skipped,
                active,
                active_fallback,
            },
        ))
    }
}

/// Outcome of a [`ModelRegistry::persist_to`] /
/// [`ModelRegistry::load_from`] round-trip.
#[derive(Debug, Clone)]
pub struct PersistReport {
    /// Digests written (persist) or verified and loaded (load), sorted.
    pub digests: Vec<u64>,
    /// Files skipped on load as `(file name, reason)` — corrupt,
    /// truncated, misnamed or unreadable. Always empty after a persist.
    pub skipped: Vec<(String, String)>,
    /// The active digest recorded (persist) or restored (load).
    pub active: u64,
    /// True when the `ACTIVE` head was missing, unparsable or named a
    /// model that failed verification, and the smallest loaded digest
    /// was activated instead.
    pub active_fallback: bool,
}

fn store_err(what: &str, path: &Path, e: &dyn std::fmt::Display) -> ServerError {
    ServerError::Store {
        detail: format!("{what} {}: {e}", path.display()),
    }
}

/// Parses `model-<digest:016x>.dfrm` file names.
fn model_file_digest(name: &str) -> Option<u64> {
    let hex = name
        .strip_prefix("model-")?
        .strip_suffix(&format!(".{MODEL_EXT}"))?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Temp-file + fsync + atomic rename: readers (and crashes) see either
/// the complete old file or the complete new one.
fn write_atomically(path: &Path, bytes: &[u8]) -> Result<(), ServerError> {
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let tmp = path.with_file_name(format!(".tmp-{file_name}"));
    let mut f = fs::File::create(&tmp).map_err(|e| store_err("create", &tmp, &e))?;
    f.write_all(bytes)
        .and_then(|()| f.sync_all())
        .map_err(|e| store_err("write", &tmp, &e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| store_err("rename into", path, &e))
}

/// Best-effort directory sync so the renames themselves are durable.
fn sync_dir(dir: &Path) {
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfr_core::DfrClassifier;

    fn frozen(tweak: f64) -> FrozenModel {
        let mut m = DfrClassifier::paper_default(5, 2, 3, 1).unwrap();
        m.reservoir_mut().set_params(0.05, 0.1).unwrap();
        m.w_out_mut()[(0, 2)] = tweak;
        FrozenModel::freeze(&m)
    }

    #[test]
    fn publish_hot_swaps_the_active_model_atomically() {
        let a = frozen(0.1);
        let b = frozen(0.2);
        let (da, db) = (a.content_digest(), b.content_digest());
        assert_ne!(da, db);

        let reg = ModelRegistry::new(a);
        assert_eq!(reg.active_digest(), da);
        assert_eq!(reg.resolve(0).unwrap().content_digest(), da);

        assert_eq!(reg.publish(b), db);
        assert_eq!(reg.active_digest(), db);
        assert_eq!(reg.resolve(0).unwrap().content_digest(), db);
        // The old model stays resolvable for digest-pinned clients.
        assert_eq!(reg.resolve(da).unwrap().content_digest(), da);
        assert_eq!(reg.digests().len(), 2);
    }

    #[test]
    fn register_does_not_activate_and_activate_requires_registration() {
        let a = frozen(0.1);
        let b = frozen(0.2);
        let (da, db) = (a.content_digest(), b.content_digest());
        let reg = ModelRegistry::new(a);
        assert_eq!(reg.register(b), db);
        assert_eq!(reg.active_digest(), da, "register must not activate");
        reg.activate(db).unwrap();
        assert_eq!(reg.active_digest(), db);
        assert!(matches!(
            reg.activate(0xdead),
            Err(ServerError::UnknownDigest { digest: 0xdead })
        ));
    }

    #[test]
    fn resolve_pins_and_rejects_unknown_digests() {
        let a = frozen(0.3);
        let da = a.content_digest();
        let reg = ModelRegistry::new(a);
        assert_eq!(reg.resolve(da).unwrap().content_digest(), da);
        assert!(matches!(
            reg.resolve(42),
            Err(ServerError::UnknownDigest { digest: 42 })
        ));
        assert!(reg.contains(da));
        assert!(!reg.contains(42));
        assert!(reg.get(42).is_none());
    }

    #[test]
    fn retire_refuses_the_active_model() {
        let a = frozen(0.1);
        let b = frozen(0.2);
        let (da, db) = (a.content_digest(), b.content_digest());
        let reg = ModelRegistry::new(a);
        reg.publish(b);
        assert!(matches!(
            reg.retire(db),
            Err(ServerError::RetireActive { .. })
        ));
        reg.retire(da).unwrap();
        assert!(!reg.contains(da));
        assert!(matches!(
            reg.retire(da),
            Err(ServerError::UnknownDigest { .. })
        ));
        assert_eq!(reg.digests(), vec![db]);
    }

    /// A unique scratch dir under the system temp dir, removed on drop.
    struct ScratchDir(std::path::PathBuf);

    impl ScratchDir {
        fn new(tag: &str) -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "dfr-store-{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            ScratchDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn persist_then_load_restores_models_and_active_head() {
        let scratch = ScratchDir::new("roundtrip");
        let a = frozen(0.1);
        let b = frozen(0.2);
        let (da, db) = (a.content_digest(), b.content_digest());
        let reg = ModelRegistry::new(a);
        reg.register(b);
        reg.activate(db).unwrap();

        let report = reg.persist_to(scratch.path()).unwrap();
        let mut expected = vec![da, db];
        expected.sort_unstable();
        assert_eq!(report.digests, expected);
        assert_eq!(report.active, db);
        assert!(report.skipped.is_empty());

        let (loaded, report) = ModelRegistry::load_from(scratch.path()).unwrap();
        assert_eq!(report.digests, expected);
        assert!(report.skipped.is_empty());
        assert!(!report.active_fallback);
        assert_eq!(loaded.active_digest(), db);
        // Digest-verified: the reloaded bytes are bitwise the originals.
        assert_eq!(
            loaded.get(da).unwrap().to_bytes(),
            reg.get(da).unwrap().to_bytes()
        );
    }

    #[test]
    fn load_skips_corrupt_files_and_reports_them() {
        let scratch = ScratchDir::new("corrupt");
        let a = frozen(0.1);
        let b = frozen(0.2);
        let (da, db) = (a.content_digest(), b.content_digest());
        let reg = ModelRegistry::new(a);
        reg.register(b);
        reg.persist_to(scratch.path()).unwrap();

        // Flip one payload byte of b's file: its digest trailer no
        // longer checks out, so the loader must skip it.
        let victim = scratch.path().join(format!("model-{db:016x}.dfrm"));
        let mut bytes = fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&victim, bytes).unwrap();
        // And drop in garbage that only *looks* like a model file.
        fs::write(
            scratch
                .path()
                .join(format!("model-{:016x}.dfrm", 0x1234u64)),
            b"not a model",
        )
        .unwrap();

        let (loaded, report) = ModelRegistry::load_from(scratch.path()).unwrap();
        assert_eq!(report.digests, vec![da]);
        assert_eq!(report.skipped.len(), 2, "skipped: {:?}", report.skipped);
        assert_eq!(loaded.active_digest(), da);
        assert!(loaded.get(db).is_none());
    }

    #[test]
    fn load_falls_back_when_the_active_head_is_lost() {
        let scratch = ScratchDir::new("headless");
        let a = frozen(0.1);
        let da = a.content_digest();
        let reg = ModelRegistry::new(a);
        reg.persist_to(scratch.path()).unwrap();
        fs::remove_file(scratch.path().join(ACTIVE_FILE)).unwrap();

        let (loaded, report) = ModelRegistry::load_from(scratch.path()).unwrap();
        assert!(report.active_fallback);
        assert_eq!(loaded.active_digest(), da);
    }

    /// Persisting while a publisher thread hot-swaps new models must
    /// always produce a loadable store whose `ACTIVE` head names a model
    /// that was actually written: every reload reports
    /// `active_fallback == false`. This is the single-critical-section
    /// snapshot invariant in `persist_to` — if the models and the active
    /// head were read under separate lock acquisitions, a publish
    /// slipping between them would persist a head pointing at a model
    /// file that does not exist.
    #[test]
    fn persist_racing_publish_never_tears_the_active_head() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let reg = Arc::new(ModelRegistry::new(frozen(0.0)));
        let stop = Arc::new(AtomicBool::new(false));
        let publisher = {
            let reg = Arc::clone(&reg);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // Cycle a bounded set of distinct models so the store
                // stays small (persist rewrites every model, fsync'd)
                // while the active head keeps flipping under persist.
                let pool: Vec<FrozenModel> =
                    (0..8).map(|k| frozen(1.0 + k as f64 * 1e-3)).collect();
                let mut published = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    reg.publish(pool[published as usize % pool.len()].clone());
                    published += 1;
                }
                published
            })
        };

        for round in 0..20 {
            let scratch = ScratchDir::new(&format!("race-{round}"));
            let persisted = reg.persist_to(scratch.path()).unwrap();
            assert!(
                persisted.digests.binary_search(&persisted.active).is_ok(),
                "persisted head {:016x} must be among the persisted digests",
                persisted.active
            );
            let (loaded, report) = ModelRegistry::load_from(scratch.path()).unwrap();
            assert!(
                !report.active_fallback,
                "round {round}: reloaded head must be the persisted one, not a fallback"
            );
            assert_eq!(loaded.active_digest(), persisted.active);
            // Every persisted model survives the digest-verified reload.
            assert_eq!(report.digests, persisted.digests);
            assert!(report.skipped.is_empty(), "skipped: {:?}", report.skipped);
        }

        stop.store(true, Ordering::Relaxed);
        let published = publisher.join().unwrap();
        assert!(published > 0, "the publisher must actually have raced");
    }

    #[test]
    fn load_from_an_empty_store_is_a_typed_error() {
        let scratch = ScratchDir::new("empty");
        fs::create_dir_all(scratch.path()).unwrap();
        assert!(matches!(
            ModelRegistry::load_from(scratch.path()),
            Err(ServerError::Store { .. })
        ));
        assert!(matches!(
            ModelRegistry::load_from(scratch.path().join("missing")),
            Err(ServerError::Store { .. })
        ));
    }
}
