//! The digest-keyed model registry with atomic hot-swap.
//!
//! Every [`FrozenModel`] is keyed by its content digest (the FNV-1a-64
//! trailer of its byte layout), so "which model served this request" is
//! always answerable from a response's `digest` field and a retrained
//! model is a *new* key — publishing can never silently mutate what an
//! old digest pin resolves to.
//!
//! [`ModelRegistry::publish`] registers and activates in one write-lock
//! critical section: requests batched before the swap serve the old
//! model, requests batched after serve the new one, and no batch ever
//! observes a half-updated registry. Old models stay resolvable (for
//! clients that pinned their digest) until explicitly
//! [retired](ModelRegistry::retire); retiring the *active* model is
//! refused so live traffic is never left without a model.

use crate::error::ServerError;
use dfr_serve::FrozenModel;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

struct Inner {
    models: HashMap<u64, Arc<FrozenModel>>,
    active: u64,
}

/// A concurrent, digest-keyed store of frozen models with one *active*
/// model serving unpinned traffic.
pub struct ModelRegistry {
    inner: RwLock<Inner>,
}

impl ModelRegistry {
    /// Creates a registry with `model` registered and active.
    pub fn new(model: FrozenModel) -> Self {
        let model = Arc::new(model);
        let digest = model.content_digest();
        let mut models = HashMap::new();
        models.insert(digest, model);
        ModelRegistry {
            inner: RwLock::new(Inner {
                models,
                active: digest,
            }),
        }
    }

    /// Registers `model` without activating it, returning its digest.
    /// Re-registering an identical model is a no-op (same digest, same
    /// bytes).
    pub fn register(&self, model: FrozenModel) -> u64 {
        let model = Arc::new(model);
        let digest = model.content_digest();
        self.inner
            .write()
            .unwrap()
            .models
            .entry(digest)
            .or_insert(model);
        digest
    }

    /// Registers `model` **and** makes it the active model, atomically —
    /// the hot-swap entry point for a freshly retrained model. Returns
    /// its digest.
    pub fn publish(&self, model: FrozenModel) -> u64 {
        let model = Arc::new(model);
        let digest = model.content_digest();
        let mut inner = self.inner.write().unwrap();
        inner.models.entry(digest).or_insert(model);
        inner.active = digest;
        digest
    }

    /// Makes an already-registered model the active one.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownDigest`] if nothing is registered under
    /// `digest`.
    pub fn activate(&self, digest: u64) -> Result<(), ServerError> {
        let mut inner = self.inner.write().unwrap();
        if !inner.models.contains_key(&digest) {
            return Err(ServerError::UnknownDigest { digest });
        }
        inner.active = digest;
        Ok(())
    }

    /// The active model (always present — the registry is constructed
    /// with one and the active model cannot be retired).
    pub fn active(&self) -> Arc<FrozenModel> {
        let inner = self.inner.read().unwrap();
        Arc::clone(
            inner
                .models
                .get(&inner.active)
                .expect("active model is always registered"),
        )
    }

    /// Digest of the active model.
    pub fn active_digest(&self) -> u64 {
        self.inner.read().unwrap().active
    }

    /// Looks up a model by digest.
    pub fn get(&self, digest: u64) -> Option<Arc<FrozenModel>> {
        self.inner.read().unwrap().models.get(&digest).cloned()
    }

    /// Resolves a request's digest pin: 0 means "the active model",
    /// anything else must be registered.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownDigest`] for an unregistered non-zero pin.
    pub fn resolve(&self, digest_pin: u64) -> Result<Arc<FrozenModel>, ServerError> {
        if digest_pin == 0 {
            return Ok(self.active());
        }
        self.get(digest_pin)
            .ok_or(ServerError::UnknownDigest { digest: digest_pin })
    }

    /// Whether a model is registered under `digest`.
    pub fn contains(&self, digest: u64) -> bool {
        self.inner.read().unwrap().models.contains_key(&digest)
    }

    /// Removes a retired model so pinned clients get `UnknownDigest`
    /// instead of stale parameters.
    ///
    /// # Errors
    ///
    /// [`ServerError::RetireActive`] when `digest` is the active model
    /// (activate a replacement first), [`ServerError::UnknownDigest`]
    /// when nothing is registered under it.
    pub fn retire(&self, digest: u64) -> Result<(), ServerError> {
        let mut inner = self.inner.write().unwrap();
        if digest == inner.active {
            return Err(ServerError::RetireActive { digest });
        }
        if inner.models.remove(&digest).is_none() {
            return Err(ServerError::UnknownDigest { digest });
        }
        Ok(())
    }

    /// All registered digests, sorted (deterministic listing).
    pub fn digests(&self) -> Vec<u64> {
        let mut d: Vec<u64> = self.inner.read().unwrap().models.keys().copied().collect();
        d.sort_unstable();
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfr_core::DfrClassifier;

    fn frozen(tweak: f64) -> FrozenModel {
        let mut m = DfrClassifier::paper_default(5, 2, 3, 1).unwrap();
        m.reservoir_mut().set_params(0.05, 0.1).unwrap();
        m.w_out_mut()[(0, 2)] = tweak;
        FrozenModel::freeze(&m)
    }

    #[test]
    fn publish_hot_swaps_the_active_model_atomically() {
        let a = frozen(0.1);
        let b = frozen(0.2);
        let (da, db) = (a.content_digest(), b.content_digest());
        assert_ne!(da, db);

        let reg = ModelRegistry::new(a);
        assert_eq!(reg.active_digest(), da);
        assert_eq!(reg.resolve(0).unwrap().content_digest(), da);

        assert_eq!(reg.publish(b), db);
        assert_eq!(reg.active_digest(), db);
        assert_eq!(reg.resolve(0).unwrap().content_digest(), db);
        // The old model stays resolvable for digest-pinned clients.
        assert_eq!(reg.resolve(da).unwrap().content_digest(), da);
        assert_eq!(reg.digests().len(), 2);
    }

    #[test]
    fn register_does_not_activate_and_activate_requires_registration() {
        let a = frozen(0.1);
        let b = frozen(0.2);
        let (da, db) = (a.content_digest(), b.content_digest());
        let reg = ModelRegistry::new(a);
        assert_eq!(reg.register(b), db);
        assert_eq!(reg.active_digest(), da, "register must not activate");
        reg.activate(db).unwrap();
        assert_eq!(reg.active_digest(), db);
        assert!(matches!(
            reg.activate(0xdead),
            Err(ServerError::UnknownDigest { digest: 0xdead })
        ));
    }

    #[test]
    fn resolve_pins_and_rejects_unknown_digests() {
        let a = frozen(0.3);
        let da = a.content_digest();
        let reg = ModelRegistry::new(a);
        assert_eq!(reg.resolve(da).unwrap().content_digest(), da);
        assert!(matches!(
            reg.resolve(42),
            Err(ServerError::UnknownDigest { digest: 42 })
        ));
        assert!(reg.contains(da));
        assert!(!reg.contains(42));
        assert!(reg.get(42).is_none());
    }

    #[test]
    fn retire_refuses_the_active_model() {
        let a = frozen(0.1);
        let b = frozen(0.2);
        let (da, db) = (a.content_digest(), b.content_digest());
        let reg = ModelRegistry::new(a);
        reg.publish(b);
        assert!(matches!(
            reg.retire(db),
            Err(ServerError::RetireActive { .. })
        ));
        reg.retire(da).unwrap();
        assert!(!reg.contains(da));
        assert!(matches!(
            reg.retire(da),
            Err(ServerError::UnknownDigest { .. })
        ));
        assert_eq!(reg.digests(), vec![db]);
    }
}
