//! Server-side error type unifying transport, framing and serving
//! failures.

use crate::frame::{FrameError, Status};
use dfr_serve::ServeError;
use std::error::Error;
use std::fmt;
use std::io;

/// Errors produced by the server, the registry and the blocking client.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServerError {
    /// A socket operation failed.
    Io(io::Error),
    /// A frame could not be read, written or decoded.
    Frame(FrameError),
    /// The serving layer rejected a request.
    Serve(ServeError),
    /// No model with this content digest is registered.
    UnknownDigest {
        /// The digest that failed to resolve.
        digest: u64,
    },
    /// Retiring the active model is refused — activate a replacement
    /// first so traffic is never left without a model.
    RetireActive {
        /// Digest of the still-active model.
        digest: u64,
    },
    /// The server rejected the request (client-side view of a non-Ok
    /// response).
    Rejected {
        /// The response status.
        status: Status,
        /// Backoff hint in milliseconds (0 when none was given).
        retry_after_ms: u32,
    },
    /// The peer answered with something other than what was asked.
    UnexpectedResponse {
        /// What was wrong.
        detail: String,
    },
    /// The on-disk model store could not be persisted or reloaded.
    Store {
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "socket error: {e}"),
            ServerError::Frame(e) => write!(f, "framing error: {e}"),
            ServerError::Serve(e) => write!(f, "serving error: {e}"),
            ServerError::UnknownDigest { digest } => {
                write!(f, "no model registered under digest {digest:#018x}")
            }
            ServerError::RetireActive { digest } => write!(
                f,
                "refusing to retire the active model {digest:#018x}; activate a replacement first"
            ),
            ServerError::Rejected {
                status,
                retry_after_ms,
            } => {
                write!(f, "server rejected the request: {status}")?;
                if *retry_after_ms > 0 {
                    write!(f, " (retry after {retry_after_ms} ms)")?;
                }
                Ok(())
            }
            ServerError::UnexpectedResponse { detail } => {
                write!(f, "unexpected response: {detail}")
            }
            ServerError::Store { detail } => {
                write!(f, "model store error: {detail}")
            }
        }
    }
}

impl Error for ServerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Frame(e) => Some(e),
            ServerError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<FrameError> for ServerError {
    fn from(e: FrameError) -> Self {
        // An Io wrapped in a FrameError is still fundamentally a socket
        // failure; keep the frame context anyway for the source chain.
        ServerError::Frame(e)
    }
}

impl From<ServeError> for ServerError {
    fn from(e: ServeError) -> Self {
        ServerError::Serve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = ServerError::from(io::Error::other("down"));
        assert!(e.to_string().contains("socket"));
        assert!(e.source().is_some());

        let e = ServerError::from(FrameError::Oversized { len: 10, max: 5 });
        assert!(e.to_string().contains("framing"));
        assert!(e.source().is_some());

        let e = ServerError::UnknownDigest { digest: 0xabc };
        assert!(e.to_string().contains("0x0000000000000abc"));
        assert!(e.source().is_none());

        let e = ServerError::RetireActive { digest: 1 };
        assert!(e.to_string().contains("retire"));

        let e = ServerError::Rejected {
            status: Status::Busy,
            retry_after_ms: 120,
        };
        assert!(e.to_string().contains("busy"));
        assert!(e.to_string().contains("120 ms"));

        let e = ServerError::UnexpectedResponse {
            detail: "id mismatch".into(),
        };
        assert!(e.to_string().contains("id mismatch"));

        let e = ServerError::Store {
            detail: "truncated model file".into(),
        };
        assert!(e.to_string().contains("model store"));
        assert!(e.source().is_none());
    }
}
