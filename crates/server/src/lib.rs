//! Network serving front-end for frozen DFR classifiers.
//!
//! `dfr-serve` answers "how do we predict fast and bit-identically";
//! this crate answers "how do we put that on a socket under load". It is
//! `std`-only (no async runtime, no external protocol libraries):
//!
//! * [`frame`] — the wire protocol: length-prefixed binary frames with a
//!   versioned header; decoding is total (malformed, truncated and
//!   oversized frames are rejected, never panicked on).
//! * [`AdmissionQueue`] — the bounded admission queue. Overload is
//!   **explicit**: a full queue rejects with `Busy` + a retry hint
//!   instead of queueing unboundedly, and the deadline-based coalescer
//!   bounds the latency any request can lose waiting for batch
//!   companions.
//! * [`ModelRegistry`] — digest-keyed model store with atomic hot-swap:
//!   [`ModelRegistry::publish`] a retrained model and the very next
//!   batch serves it, while digest-pinned clients keep getting the exact
//!   version they asked for. Every response carries the serving model's
//!   content digest.
//! * [`Server`] — accept loop, per-connection reader/writer threads, and
//!   the batcher thread that drains the queue into
//!   [`ServeSession`](dfr_serve::ServeSession)s. Coalescing never
//!   changes bytes: responses are bitwise identical to calling the
//!   session directly, pinned by the loopback suite in
//!   `tests/loopback.rs`.
//! * [`OnlinePublisher`] — the continual-learning loop: absorbs labelled
//!   series into `dfr-core`'s rank-1
//!   [`OnlineRidge`](dfr_core::online::OnlineRidge) learner and on a
//!   configurable cadence refits, refreezes and
//!   [`ModelRegistry::publish`]es — live traffic hot-swaps onto the new
//!   readout at the next batch boundary.
//! * [`Client`] — a small blocking client used by the tests and the
//!   `server_bench` load generator, with built-in jittered-backoff
//!   retry ([`Client::call_with_retry`]) honoring the server's
//!   `retry_after_ms` hints.
//! * [`faults`] — deterministic, seeded fault injection (delayed/torn
//!   reads, slow-drip writes, mid-frame disconnects, scheduled panics)
//!   compiled into the shipping binary behind a zero-cost
//!   [`FaultPlan::none`] default. The failure-hardening it exercises —
//!   idle-connection reaping, `catch_unwind` panic quarantine, graceful
//!   drain, crash-safe model persistence
//!   ([`ModelRegistry::persist_to`]/[`ModelRegistry::load_from`]) — is
//!   soaked in `tests/chaos.rs` and documented in `DESIGN.md` §14.
//!
//! # Example
//!
//! ```
//! use dfr_core::DfrClassifier;
//! use dfr_linalg::Matrix;
//! use dfr_serve::FrozenModel;
//! use dfr_server::{Client, ModelRegistry, Server, ServerConfig};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut model = DfrClassifier::paper_default(6, 2, 3, 0)?;
//! model.reservoir_mut().set_params(0.05, 0.1)?;
//! let frozen = FrozenModel::freeze(&model);
//! let digest = frozen.content_digest();
//!
//! let registry = Arc::new(ModelRegistry::new(frozen));
//! let mut server = Server::bind("127.0.0.1:0", registry, ServerConfig::default())?;
//!
//! let mut client = Client::connect(server.local_addr())?;
//! let series = Matrix::filled(12, 2, 0.2);
//! let prediction = client.predict(&series)?;
//! assert_eq!(prediction.digest, digest);
//! assert_eq!(prediction.class, model.predict(&series)?);
//!
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod frame;

mod client;
mod error;
mod publisher;
mod queue;
mod registry;
mod server;

pub use client::{Client, ClientPrediction, RetryPolicy};
pub use error::ServerError;
pub use faults::{FaultPlan, FaultSpec, INJECTED_PANIC};
pub use frame::{Status, DEFAULT_MAX_BODY, PROTOCOL_VERSION};
pub use publisher::{OnlinePublisher, PublisherConfig};
pub use queue::{AdmissionQueue, AdmitError};
pub use registry::{ModelRegistry, PersistReport};
pub use server::{Server, ServerConfig, StatsSnapshot};
