//! The wire protocol: length-prefixed binary frames with a versioned
//! header.
//!
//! Every message on a connection is one *frame*:
//!
//! ```text
//! frame := u32 body_len (LE) · body (body_len bytes)
//! body  := u8 version (= 1) · u8 kind · u16 reserved (= 0) · u64 request_id
//!          · kind-specific payload
//! ```
//!
//! Request payload (`kind = 1`):
//!
//! ```text
//! u64 digest_pin (0 = serve the active model) · u32 rows · u32 cols
//! · rows·cols f64 (row-major series)
//! ```
//!
//! Response payload (`kind = 2`):
//!
//! ```text
//! u16 status · u16 reserved (= 0) · u32 retry_after_ms
//! · u64 digest (content digest of the model that served, 0 if none)
//! · u32 class · u32 num_classes · num_classes f64 (probabilities)
//! ```
//!
//! All integers and floats are little-endian, matching the `FrozenModel`
//! byte layout. The `version` byte is checked on every frame; a reader
//! rejects frames whose declared body length exceeds its configured cap
//! *before* buffering them, so a malicious length prefix cannot balloon
//! memory. Decoding is total: any truncated, oversized or inconsistent
//! frame produces a [`FrameError`], never a panic — pinned by the
//! shrinking property suite in `tests/framing.rs`.

use dfr_linalg::Matrix;
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

/// Version byte every frame carries; bumped on any wire-layout change.
pub const PROTOCOL_VERSION: u8 = 1;

/// Default cap on one frame's body length (4 MiB — a 64-class response is
/// tiny, and a 4 MiB request holds a 500k-element series, far beyond any
/// DFR workload; servers can configure their own cap).
pub const DEFAULT_MAX_BODY: usize = 1 << 22;

/// Frame kind: a prediction request.
const KIND_REQUEST: u8 = 1;
/// Frame kind: a prediction response.
const KIND_RESPONSE: u8 = 2;

/// Fixed header bytes common to both kinds.
const HEADER_LEN: usize = 1 + 1 + 2 + 8;

/// Response status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum Status {
    /// Served: `class` and `probabilities` are valid.
    Ok = 0,
    /// The admission queue was full — back off for `retry_after_ms` and
    /// retry (explicit backpressure; the server never queues unboundedly).
    Busy = 1,
    /// The request could not be decoded (or violated a protocol limit).
    Malformed = 2,
    /// The pinned model digest is not registered on this server.
    UnknownDigest = 3,
    /// The model rejected the series (e.g. channel mismatch, divergence).
    PredictFailed = 4,
    /// The server is shutting down and no longer admits requests.
    ShuttingDown = 5,
    /// The serve for this sample panicked and was quarantined; the
    /// request was not answered with a prediction. Not retryable against
    /// the same sample without investigation.
    Internal = 6,
    /// The series decoded cleanly but carried non-finite (NaN/∞) values.
    /// Rejected *before* admission: a poisoned sample never reaches the
    /// batcher, consumes no quarantine slot, and retrying the same
    /// payload is pointless — fix the producer.
    BadInput = 7,
}

impl Status {
    /// The wire code of this status.
    pub fn code(self) -> u16 {
        self as u16
    }

    /// Parses a wire code.
    pub fn from_code(code: u16) -> Option<Status> {
        match code {
            0 => Some(Status::Ok),
            1 => Some(Status::Busy),
            2 => Some(Status::Malformed),
            3 => Some(Status::UnknownDigest),
            4 => Some(Status::PredictFailed),
            5 => Some(Status::ShuttingDown),
            6 => Some(Status::Internal),
            7 => Some(Status::BadInput),
            _ => None,
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Status::Ok => "ok",
            Status::Busy => "busy",
            Status::Malformed => "malformed",
            Status::UnknownDigest => "unknown digest",
            Status::PredictFailed => "predict failed",
            Status::ShuttingDown => "shutting down",
            Status::Internal => "internal",
            Status::BadInput => "bad input",
        };
        f.write_str(name)
    }
}

/// A decoded prediction request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub request_id: u64,
    /// Content digest the client pins, or 0 to serve the active model.
    pub digest_pin: u64,
    /// The input series (`T × C`, row-major).
    pub series: Matrix,
}

/// A decoded prediction response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's correlation id, echoed back.
    pub request_id: u64,
    /// Outcome of the request.
    pub status: Status,
    /// Backoff hint in milliseconds (meaningful with [`Status::Busy`]).
    pub retry_after_ms: u32,
    /// Content digest of the model that served (0 when nothing served).
    pub digest: u64,
    /// Predicted class (valid with [`Status::Ok`]).
    pub class: u32,
    /// Class probabilities (empty unless [`Status::Ok`]).
    pub probabilities: Vec<f64>,
}

impl Response {
    /// A successful response.
    pub fn ok(request_id: u64, digest: u64, class: usize, probabilities: Vec<f64>) -> Response {
        Response {
            request_id,
            status: Status::Ok,
            retry_after_ms: 0,
            digest,
            class: class as u32,
            probabilities,
        }
    }

    /// A rejection with the given status (and optional retry hint).
    pub fn reject(request_id: u64, status: Status, retry_after_ms: u32) -> Response {
        Response {
            request_id,
            status,
            retry_after_ms,
            digest: 0,
            class: 0,
            probabilities: Vec::new(),
        }
    }
}

/// Errors produced by framing, encoding and decoding.
#[derive(Debug)]
#[non_exhaustive]
pub enum FrameError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The peer closed the connection in the middle of a frame.
    TruncatedFrame {
        /// Bytes the length prefix promised.
        expected: usize,
        /// Bytes actually received before EOF.
        found: usize,
    },
    /// The declared body length exceeds the reader's cap.
    Oversized {
        /// Declared body length.
        len: usize,
        /// The reader's configured cap.
        max: usize,
    },
    /// A body ended before its declared fields.
    TruncatedBody {
        /// Offset at which the next field would start.
        offset: usize,
        /// Total body length.
        len: usize,
    },
    /// A body carried more bytes than its fields account for.
    TrailingBytes {
        /// Unconsumed byte count.
        extra: usize,
    },
    /// The frame's version byte is not [`PROTOCOL_VERSION`].
    UnsupportedVersion {
        /// The version byte received.
        found: u8,
    },
    /// The frame's kind byte was not the expected one.
    UnexpectedKind {
        /// The kind byte received.
        found: u8,
        /// The kind the decoder was asked for.
        expected: u8,
    },
    /// A request declared an empty or overflow-sized series shape.
    BadShape {
        /// Declared row count.
        rows: u64,
        /// Declared column count.
        cols: u64,
    },
    /// A response carried an unknown status code.
    BadStatus {
        /// The status code received.
        code: u16,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::TruncatedFrame { expected, found } => {
                write!(
                    f,
                    "frame truncated: length prefix promised {expected} bytes, got {found}"
                )
            }
            FrameError::Oversized { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::TruncatedBody { offset, len } => {
                write!(
                    f,
                    "body truncated: field at offset {offset} in a {len}-byte body"
                )
            }
            FrameError::TrailingBytes { extra } => {
                write!(
                    f,
                    "body carries {extra} trailing bytes beyond its declared fields"
                )
            }
            FrameError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported protocol version {found} (expected {PROTOCOL_VERSION})"
                )
            }
            FrameError::UnexpectedKind { found, expected } => {
                write!(f, "unexpected frame kind {found} (expected {expected})")
            }
            FrameError::BadShape { rows, cols } => {
                write!(f, "bad series shape {rows}x{cols}")
            }
            FrameError::BadStatus { code } => write!(f, "unknown status code {code}"),
        }
    }
}

impl Error for FrameError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (length prefix + body) and flushes.
///
/// # Errors
///
/// Any transport error from the writer.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one frame body into `buf` (reused across calls) and returns it,
/// or `None` on a clean end-of-stream at a frame boundary.
///
/// The declared length is checked against `max_body` **before** any body
/// byte is buffered, so a hostile length prefix cannot force a large
/// allocation.
///
/// # Errors
///
/// [`FrameError::Oversized`] for a length prefix beyond the cap,
/// [`FrameError::TruncatedFrame`] for EOF inside a frame, and
/// [`FrameError::Io`] for transport failures.
pub fn read_frame<'b>(
    r: &mut impl Read,
    buf: &'b mut Vec<u8>,
    max_body: usize,
) -> Result<Option<&'b [u8]>, FrameError> {
    let mut prefix = [0u8; 4];
    match read_exact_or_eof(r, &mut prefix)? {
        0 => return Ok(None), // clean EOF between frames
        4 => {}
        n => {
            return Err(FrameError::TruncatedFrame {
                expected: 4,
                found: n,
            })
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > max_body {
        return Err(FrameError::Oversized { len, max: max_body });
    }
    buf.clear();
    buf.resize(len, 0);
    let got = read_exact_or_eof(r, buf)?;
    if got != len {
        return Err(FrameError::TruncatedFrame {
            expected: len,
            found: got,
        });
    }
    Ok(Some(buf.as_slice()))
}

/// Reads until `buf` is full or EOF; returns the byte count actually read.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(filled)
}

/// Encodes a request as a complete frame (length prefix included) into
/// `out` (cleared first, allocation reused at its high-water mark).
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    let rows = req.series.rows();
    let cols = req.series.cols();
    let body_len = HEADER_LEN + 8 + 4 + 4 + 8 * rows * cols;
    out.clear();
    out.reserve(4 + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(PROTOCOL_VERSION);
    out.push(KIND_REQUEST);
    out.extend_from_slice(&[0, 0]);
    out.extend_from_slice(&req.request_id.to_le_bytes());
    out.extend_from_slice(&req.digest_pin.to_le_bytes());
    out.extend_from_slice(&(rows as u32).to_le_bytes());
    out.extend_from_slice(&(cols as u32).to_le_bytes());
    for &v in req.series.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Encodes a response as a complete frame (length prefix included) into
/// `out` (cleared first).
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) {
    let body_len = HEADER_LEN + 2 + 2 + 4 + 8 + 4 + 4 + 8 * resp.probabilities.len();
    out.clear();
    out.reserve(4 + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(PROTOCOL_VERSION);
    out.push(KIND_RESPONSE);
    out.extend_from_slice(&[0, 0]);
    out.extend_from_slice(&resp.request_id.to_le_bytes());
    out.extend_from_slice(&resp.status.code().to_le_bytes());
    out.extend_from_slice(&[0, 0]);
    out.extend_from_slice(&resp.retry_after_ms.to_le_bytes());
    out.extend_from_slice(&resp.digest.to_le_bytes());
    out.extend_from_slice(&resp.class.to_le_bytes());
    out.extend_from_slice(&(resp.probabilities.len() as u32).to_le_bytes());
    for &p in &resp.probabilities {
        out.extend_from_slice(&p.to_le_bytes());
    }
}

/// A bounds-checked reader over one frame body.
struct Cursor<'a> {
    body: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn new(body: &'a [u8]) -> Self {
        Cursor { body, off: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.off.checked_add(n).filter(|&e| e <= self.body.len());
        match end {
            Some(end) => {
                let s = &self.body[self.off..end];
                self.off = end;
                Ok(s)
            }
            None => Err(FrameError::TruncatedBody {
                offset: self.off,
                len: self.body.len(),
            }),
        }
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64s(&mut self, n: usize) -> Result<Vec<f64>, FrameError> {
        let bytes = self.take(8 * n)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|ch| f64::from_le_bytes(ch.try_into().expect("8 bytes")))
            .collect())
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.off == self.body.len() {
            Ok(())
        } else {
            Err(FrameError::TrailingBytes {
                extra: self.body.len() - self.off,
            })
        }
    }
}

/// Decodes the shared header, returning the request id.
fn decode_header(c: &mut Cursor<'_>, expected_kind: u8) -> Result<u64, FrameError> {
    let version = c.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(FrameError::UnsupportedVersion { found: version });
    }
    let kind = c.u8()?;
    if kind != expected_kind {
        return Err(FrameError::UnexpectedKind {
            found: kind,
            expected: expected_kind,
        });
    }
    c.u16()?; // reserved
    c.u64()
}

/// Decodes a request body (the frame's payload, without the length
/// prefix).
///
/// # Errors
///
/// [`FrameError`] naming the first malformed element: wrong version or
/// kind, truncated fields, an empty or overflowing shape, or a payload
/// whose length disagrees with `rows × cols`.
pub fn decode_request(body: &[u8]) -> Result<Request, FrameError> {
    let mut c = Cursor::new(body);
    let request_id = decode_header(&mut c, KIND_REQUEST)?;
    let digest_pin = c.u64()?;
    let rows = c.u32()? as u64;
    let cols = c.u32()? as u64;
    // Reject empty and overflow-prone shapes before any multiplication
    // can wrap: the frame cap (u32 body length) bounds real payloads far
    // below this anyway.
    if rows == 0 || cols == 0 || rows.saturating_mul(cols) > (u32::MAX as u64) / 8 {
        return Err(FrameError::BadShape { rows, cols });
    }
    let elements = (rows * cols) as usize;
    let data = c.f64s(elements)?;
    c.finish()?;
    let series = Matrix::from_vec(rows as usize, cols as usize, data)
        .expect("element count checked against shape");
    Ok(Request {
        request_id,
        digest_pin,
        series,
    })
}

/// Decodes a response body (the frame's payload, without the length
/// prefix).
///
/// # Errors
///
/// [`FrameError`] naming the first malformed element.
pub fn decode_response(body: &[u8]) -> Result<Response, FrameError> {
    let mut c = Cursor::new(body);
    let request_id = decode_header(&mut c, KIND_RESPONSE)?;
    let code = c.u16()?;
    let status = Status::from_code(code).ok_or(FrameError::BadStatus { code })?;
    c.u16()?; // reserved
    let retry_after_ms = c.u32()?;
    let digest = c.u64()?;
    let class = c.u32()?;
    let num_classes = c.u32()? as usize;
    if num_classes > body.len() / 8 + 1 {
        // cheap pre-check so a hostile count cannot demand a giant vec
        return Err(FrameError::TruncatedBody {
            offset: c.off,
            len: body.len(),
        });
    }
    let probabilities = c.f64s(num_classes)?;
    c.finish()?;
    Ok(Response {
        request_id,
        status,
        retry_after_ms,
        digest,
        class,
        probabilities,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> Request {
        Request {
            request_id: 42,
            digest_pin: 0xdead_beef,
            series: Matrix::from_vec(3, 2, vec![0.1, -0.2, 0.3, 4.0, -5.0, 6.5]).unwrap(),
        }
    }

    #[test]
    fn request_round_trips() {
        let req = request();
        let mut frame = Vec::new();
        encode_request(&req, &mut frame);
        // Strip the length prefix to get the body, as a reader would.
        let body = &frame[4..];
        assert_eq!(
            u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize,
            body.len()
        );
        assert_eq!(decode_request(body).unwrap(), req);
    }

    #[test]
    fn response_round_trips() {
        let resp = Response::ok(7, 0x1234, 2, vec![0.1, 0.2, 0.7]);
        let mut frame = Vec::new();
        encode_response(&resp, &mut frame);
        assert_eq!(decode_response(&frame[4..]).unwrap(), resp);

        let busy = Response::reject(8, Status::Busy, 250);
        encode_response(&busy, &mut frame);
        let got = decode_response(&frame[4..]).unwrap();
        assert_eq!(got, busy);
        assert_eq!(got.retry_after_ms, 250);
    }

    #[test]
    fn truncations_are_rejected_not_panics() {
        let mut frame = Vec::new();
        encode_request(&request(), &mut frame);
        let body = &frame[4..];
        for cut in 0..body.len() {
            assert!(
                decode_request(&body[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn shape_payload_disagreement_is_rejected() {
        let mut frame = Vec::new();
        encode_request(&request(), &mut frame);
        let mut body = frame[4..].to_vec();
        // Bump the declared row count: payload no longer covers the shape.
        body[HEADER_LEN + 8] += 1;
        assert!(matches!(
            decode_request(&body),
            Err(FrameError::TruncatedBody { .. })
        ));
        // Zero rows is rejected outright.
        let zero = 0u32.to_le_bytes();
        body[HEADER_LEN + 8..HEADER_LEN + 12].copy_from_slice(&zero);
        assert!(matches!(
            decode_request(&body),
            Err(FrameError::BadShape { .. })
        ));
    }

    #[test]
    fn bad_version_kind_and_status_are_rejected() {
        let mut frame = Vec::new();
        encode_request(&request(), &mut frame);
        let mut body = frame[4..].to_vec();
        body[0] = 9;
        assert!(matches!(
            decode_request(&body),
            Err(FrameError::UnsupportedVersion { found: 9 })
        ));
        body[0] = PROTOCOL_VERSION;
        assert!(matches!(
            decode_response(&body),
            Err(FrameError::UnexpectedKind { .. })
        ));

        let resp = Response::reject(1, Status::Malformed, 0);
        encode_response(&resp, &mut frame);
        let mut body = frame[4..].to_vec();
        body[HEADER_LEN] = 99;
        assert!(matches!(
            decode_response(&body),
            Err(FrameError::BadStatus { code: 99 })
        ));
    }

    #[test]
    fn read_frame_respects_the_cap_and_eof() {
        let mut frame = Vec::new();
        encode_request(&request(), &mut frame);
        let mut buf = Vec::new();

        // Normal read.
        let mut r = frame.as_slice();
        let body = read_frame(&mut r, &mut buf, DEFAULT_MAX_BODY)
            .unwrap()
            .unwrap();
        assert!(decode_request(body).is_ok());
        // Clean EOF afterwards.
        assert!(read_frame(&mut r, &mut buf, DEFAULT_MAX_BODY)
            .unwrap()
            .is_none());

        // Cap below the body length → Oversized before buffering.
        let mut r = frame.as_slice();
        assert!(matches!(
            read_frame(&mut r, &mut buf, 8),
            Err(FrameError::Oversized { .. })
        ));

        // EOF inside the body → TruncatedFrame.
        let mut r = &frame[..frame.len() - 3];
        assert!(matches!(
            read_frame(&mut r, &mut buf, DEFAULT_MAX_BODY),
            Err(FrameError::TruncatedFrame { .. })
        ));

        // EOF inside the length prefix → TruncatedFrame.
        let mut r = &frame[..2];
        assert!(matches!(
            read_frame(&mut r, &mut buf, DEFAULT_MAX_BODY),
            Err(FrameError::TruncatedFrame { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut frame = Vec::new();
        encode_request(&request(), &mut frame);
        let mut body = frame[4..].to_vec();
        body.push(0);
        assert!(matches!(
            decode_request(&body),
            Err(FrameError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn errors_display_and_source() {
        let e = FrameError::from(io::Error::other("boom"));
        assert!(e.to_string().contains("transport"));
        assert!(e.source().is_some());
        assert!(FrameError::Oversized { len: 9, max: 8 }.source().is_none());
        assert!(Status::from_code(99).is_none());
        assert_eq!(Status::Busy.to_string(), "busy");
        assert_eq!(Status::from_code(Status::Ok.code()), Some(Status::Ok));
    }

    #[test]
    fn every_status_round_trips_its_wire_code() {
        for status in [
            Status::Ok,
            Status::Busy,
            Status::Malformed,
            Status::UnknownDigest,
            Status::PredictFailed,
            Status::ShuttingDown,
            Status::Internal,
            Status::BadInput,
        ] {
            assert_eq!(Status::from_code(status.code()), Some(status));
        }
        assert_eq!(Status::BadInput.code(), 7);
        assert_eq!(Status::BadInput.to_string(), "bad input");
        // A BadInput rejection survives the wire round trip.
        let resp = Response::reject(9, Status::BadInput, 0);
        let mut frame = Vec::new();
        encode_response(&resp, &mut frame);
        assert_eq!(decode_response(&frame[4..]).unwrap(), resp);
    }
}
