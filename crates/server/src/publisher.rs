//! The online-learning publisher: a continual-learning loop that absorbs
//! labelled series into an [`OnlineRidge`] learner and periodically
//! refreezes + hot-swaps the serving model.
//!
//! The loop closes the gap between `dfr-core`'s rank-1 incremental
//! readout refit and `dfr-server`'s [`ModelRegistry`]: each absorbed
//! sample costs `O(p²)` (one streaming forward pass for features, one
//! rank-1 Cholesky update), and on a configurable cadence the learner
//! refits the readout (`O(p²q)` off a warm factor), refreezes the
//! classifier and [`ModelRegistry::publish`]es the result. Live traffic
//! picks the new model up at the next batch boundary through the
//! registry's existing atomic hot-swap — the publisher never touches the
//! serving path directly, so serving stays bit-identical between
//! publishes.
//!
//! The publisher is deliberately single-threaded state: run it on its
//! own thread next to a [`Server`](crate::Server) sharing the same
//! `Arc<ModelRegistry>` (the chaos soak does exactly this under fault
//! injection).

use crate::registry::ModelRegistry;
use dfr_core::online::OnlineRidge;
use dfr_core::streaming::{StreamingCache, StreamingForward};
use dfr_core::{CoreError, DfrClassifier};
use dfr_linalg::Matrix;
use dfr_serve::FrozenModel;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Publish cadence for an [`OnlinePublisher`].
#[derive(Debug, Clone, Copy)]
pub struct PublisherConfig {
    /// Publish after this many newly absorbed samples (0 is clamped
    /// to 1). Default 32.
    pub publish_every: usize,
    /// Minimum wall-clock spacing between publishes — a flood of samples
    /// cannot thrash the registry faster than this. Default 0 (cadence
    /// is sample-driven only).
    pub min_interval: Duration,
}

impl Default for PublisherConfig {
    fn default() -> Self {
        PublisherConfig {
            publish_every: 32,
            min_interval: Duration::ZERO,
        }
    }
}

/// A continual learner that feeds absorbed samples into an
/// [`OnlineRidge`] and periodically publishes a refrozen model to a
/// shared [`ModelRegistry`].
///
/// All buffers (streaming cache, refit scratch, the classifier's own
/// readout) are owned and reused, so the steady-state absorb → refit →
/// freeze → publish loop performs no per-sample allocation beyond the
/// frozen model's byte layout at publish time.
pub struct OnlinePublisher {
    model: DfrClassifier,
    forward: StreamingForward,
    cache: StreamingCache,
    learner: OnlineRidge,
    registry: Arc<ModelRegistry>,
    config: PublisherConfig,
    since_publish: usize,
    last_publish: Option<Instant>,
    published: u64,
    w_out: Matrix,
    bias: Vec<f64>,
}

impl OnlinePublisher {
    /// Creates a publisher around `model`, learning its readout online
    /// with ridge strength `beta` and publishing into `registry`.
    ///
    /// The learner starts from the ridge prior (`βI`), **not** from the
    /// model's current readout: the first publish reflects only absorbed
    /// samples. Use [`forgetting`](OnlinePublisher::with_forgetting) for
    /// drifting streams.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for a non-positive or non-finite
    /// `beta` (propagated from [`OnlineRidge::new`]).
    pub fn new(
        model: DfrClassifier,
        beta: f64,
        registry: Arc<ModelRegistry>,
        config: PublisherConfig,
    ) -> Result<Self, CoreError> {
        let learner = OnlineRidge::new(model.feature_dim(), model.num_classes(), beta)?;
        Ok(Self::assemble(model, learner, registry, config))
    }

    /// As [`new`](OnlinePublisher::new) with an exponential forgetting
    /// factor `forget ∈ (0, 1]`, so old samples decay and the published
    /// readout tracks a drifting distribution.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for invalid `beta` or `forget`.
    pub fn with_forgetting(
        model: DfrClassifier,
        beta: f64,
        forget: f64,
        registry: Arc<ModelRegistry>,
        config: PublisherConfig,
    ) -> Result<Self, CoreError> {
        let learner =
            OnlineRidge::with_forgetting(model.feature_dim(), model.num_classes(), beta, forget)?;
        Ok(Self::assemble(model, learner, registry, config))
    }

    fn assemble(
        model: DfrClassifier,
        learner: OnlineRidge,
        registry: Arc<ModelRegistry>,
        config: PublisherConfig,
    ) -> Self {
        let (q, p) = (model.num_classes(), model.feature_dim());
        OnlinePublisher {
            model,
            forward: StreamingForward::paper(),
            cache: StreamingCache::empty(),
            learner,
            registry,
            config,
            since_publish: 0,
            last_publish: None,
            published: 0,
            w_out: Matrix::zeros(q, p),
            bias: vec![0.0; q],
        }
    }

    /// Absorbs one labelled series: streaming forward pass for the DPRR
    /// features, then a rank-1 update of the learner. `O(T·N_x² + p²)`,
    /// allocation-free after the first sample.
    ///
    /// # Errors
    ///
    /// [`CoreError::Reservoir`] for empty series / channel mismatch /
    /// divergence, [`CoreError::InvalidConfig`] for a label outside the
    /// class range. The learner is untouched on error.
    pub fn absorb(&mut self, series: &Matrix, label: usize) -> Result<(), CoreError> {
        self.forward
            .run_into(&self.model, series, &mut self.cache)?;
        self.learner.absorb_label(&self.cache.features, label)?;
        self.since_publish += 1;
        Ok(())
    }

    /// Publishes a refrozen model if the cadence is due: at least
    /// [`publish_every`](PublisherConfig::publish_every) samples absorbed
    /// since the last publish *and*
    /// [`min_interval`](PublisherConfig::min_interval) elapsed. Returns
    /// the published digest, or `None` when not due.
    ///
    /// # Errors
    ///
    /// As [`publish_now`](OnlinePublisher::publish_now).
    pub fn maybe_publish(&mut self) -> Result<Option<u64>, CoreError> {
        let due_samples = self.since_publish >= self.config.publish_every.max(1);
        let due_time = match self.last_publish {
            None => true,
            Some(t) => t.elapsed() >= self.config.min_interval,
        };
        if !(due_samples && due_time) {
            return Ok(None);
        }
        self.publish_now().map(Some)
    }

    /// Refits the readout from the learner's current system, refreezes
    /// the classifier and atomically publishes it, unconditionally.
    /// Returns the new content digest.
    ///
    /// # Errors
    ///
    /// [`CoreError::Linalg`] when the refit fails even after escalation
    /// (QR → SVD) — the registry keeps serving the previous model and the
    /// learner's state is unchanged, so a later absorb + publish can
    /// recover.
    pub fn publish_now(&mut self) -> Result<u64, CoreError> {
        self.learner.refit_into(&mut self.w_out, &mut self.bias)?;
        self.model.w_out_mut().copy_from(&self.w_out);
        self.model.bias_mut().copy_from_slice(&self.bias);
        let digest = self.registry.publish(FrozenModel::freeze(&self.model));
        self.since_publish = 0;
        self.last_publish = Some(Instant::now());
        self.published += 1;
        Ok(digest)
    }

    /// Samples absorbed since the last publish.
    pub fn pending(&self) -> usize {
        self.since_publish
    }

    /// Models published so far.
    pub fn published(&self) -> u64 {
        self.published
    }

    /// The underlying learner (absorption counters, solver report, …).
    pub fn learner(&self) -> &OnlineRidge {
        &self.learner
    }

    /// The classifier as of the last refit (its readout lags the learner
    /// by up to [`pending`](OnlinePublisher::pending) samples).
    pub fn model(&self) -> &DfrClassifier {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_for(label: usize, k: usize) -> Matrix {
        // Class-dependent amplitude so the readout has signal to learn.
        let amp = 0.3 + 0.4 * label as f64;
        Matrix::from_vec(
            10,
            2,
            (0..20)
                .map(|i| amp * ((i + k) as f64 * 0.7).sin())
                .collect(),
        )
        .unwrap()
    }

    fn publisher(publish_every: usize) -> OnlinePublisher {
        let mut model = DfrClassifier::paper_default(4, 2, 2, 7).unwrap();
        model.reservoir_mut().set_params(0.05, 0.1).unwrap();
        let registry = Arc::new(ModelRegistry::new(FrozenModel::freeze(&model)));
        OnlinePublisher::new(
            model,
            1e-4,
            registry,
            PublisherConfig {
                publish_every,
                min_interval: Duration::ZERO,
            },
        )
        .unwrap()
    }

    #[test]
    fn publishes_on_the_sample_cadence_and_hot_swaps() {
        let mut publisher = publisher(4);
        let registry = Arc::clone(&publisher.registry);
        let baseline = registry.active_digest();

        for k in 0..3 {
            publisher.absorb(&series_for(k % 2, k), k % 2).unwrap();
            assert_eq!(publisher.maybe_publish().unwrap(), None, "not due yet");
        }
        assert_eq!(registry.active_digest(), baseline);

        publisher.absorb(&series_for(1, 3), 1).unwrap();
        let digest = publisher
            .maybe_publish()
            .unwrap()
            .expect("4th sample is due");
        assert_ne!(digest, baseline, "a trained readout must change the digest");
        assert_eq!(registry.active_digest(), digest, "publish must hot-swap");
        assert_eq!(publisher.pending(), 0);
        assert_eq!(publisher.published(), 1);
        // The old model stays resolvable for pinned clients.
        assert!(registry.contains(baseline));
    }

    #[test]
    fn published_readout_matches_a_direct_refit() {
        let mut publisher = publisher(1);
        let mut learner = OnlineRidge::new(
            publisher.model.feature_dim(),
            publisher.model.num_classes(),
            1e-4,
        )
        .unwrap();
        let forward = StreamingForward::paper();
        for k in 0..6 {
            let s = series_for(k % 2, k);
            let cache = forward.run(publisher.model(), &s).unwrap();
            learner.absorb_label(&cache.features, k % 2).unwrap();
            publisher.absorb(&s, k % 2).unwrap();
        }
        let digest = publisher.publish_now().unwrap();
        let (w, b) = learner.refit().unwrap();
        let thawed = publisher.registry.get(digest).unwrap().thaw().unwrap();
        assert_eq!(thawed.w_out().as_slice(), w.as_slice());
        assert_eq!(thawed.bias(), b.as_slice());
    }

    #[test]
    fn min_interval_throttles_publishes() {
        let mut model = DfrClassifier::paper_default(4, 2, 2, 7).unwrap();
        model.reservoir_mut().set_params(0.05, 0.1).unwrap();
        let registry = Arc::new(ModelRegistry::new(FrozenModel::freeze(&model)));
        let mut publisher = OnlinePublisher::new(
            model,
            1e-4,
            registry,
            PublisherConfig {
                publish_every: 1,
                min_interval: Duration::from_secs(3600),
            },
        )
        .unwrap();

        publisher.absorb(&series_for(0, 0), 0).unwrap();
        assert!(
            publisher.maybe_publish().unwrap().is_some(),
            "first is free"
        );
        publisher.absorb(&series_for(1, 1), 1).unwrap();
        assert_eq!(
            publisher.maybe_publish().unwrap(),
            None,
            "an hour must pass before the next publish"
        );
        assert_eq!(publisher.pending(), 1, "the sample stays pending");
    }

    #[test]
    fn absorb_rejects_bad_input_without_corrupting_the_learner() {
        let mut publisher = publisher(1);
        publisher.absorb(&series_for(0, 0), 0).unwrap();
        let absorbed = publisher.learner().absorbed();

        // Empty series: typed rejection from the streaming forward.
        assert!(publisher.absorb(&Matrix::zeros(0, 2), 0).is_err());
        // Channel mismatch.
        assert!(publisher.absorb(&Matrix::zeros(5, 3), 0).is_err());
        // Label out of range: rejected by the learner before mutation.
        assert!(publisher.absorb(&series_for(0, 1), 9).is_err());

        assert_eq!(publisher.learner().absorbed(), absorbed);
        // The loop still works afterwards.
        publisher.absorb(&series_for(1, 2), 1).unwrap();
        assert!(publisher.publish_now().is_ok());
    }
}
