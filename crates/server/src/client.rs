//! A minimal blocking client for the DFR wire protocol.
//!
//! One [`Client`] owns one connection and issues one request at a time
//! (request ids are still checked, so a desynced server is detected
//! rather than silently mis-paired). Load generators open one client per
//! worker thread.
//!
//! Backpressure is part of the protocol — the server answers `Busy` with
//! a `retry_after_ms` hint instead of queueing unboundedly — so the
//! client carries the matching retry discipline:
//! [`Client::call_with_retry`] backs off with seeded, jittered
//! exponential delays (never below the server's hint, with both bounded
//! by [`RetryPolicy::cap`]) until the request is admitted or
//! [`RetryPolicy::max_attempts`] is spent.

use crate::error::ServerError;
use crate::frame::{decode_response, read_frame, Request, Response, Status, DEFAULT_MAX_BODY};
use dfr_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Backoff discipline for [`Client::call_with_retry`].
///
/// Attempt `k` (counting from 0) that is rejected `Busy` sleeps
/// `max(min(hint, cap), base · 2^k · jitter)` where `hint` is the
/// server's `retry_after_ms`, the exponential is capped at
/// [`cap`](Self::cap), and `jitter` is drawn uniformly from `[0.5, 1.0]`
/// so a herd of clients rejected together does not retry together. Every
/// sleep is bounded by `cap`: the hint is honored as a floor only up to
/// the cap, so a buggy or hostile server cannot schedule an unbounded
/// (`u32::MAX` ms ≈ 49-day) client sleep.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts before the last `Busy` rejection is returned to
    /// the caller. Default 8.
    pub max_attempts: u32,
    /// First backoff step. Default 1 ms.
    pub base: Duration,
    /// Upper bound on every backoff sleep — the exponential step *and*
    /// the server hint are both clamped through it. Default 100 ms.
    pub cap: Duration,
    /// Seed for the jitter stream; mixed with the request id so every
    /// retried request jitters independently but reproducibly. Default 0.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(100),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The capped exponential step for attempt `attempt` (0-based):
    /// `min(base · 2^attempt, cap)`.
    fn exp_step(&self, attempt: u32) -> Duration {
        self.base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cap)
    }

    /// The server's `retry_after_ms` hint clamped through the cap — the
    /// floor every backoff honors. Clamping is the overflow fix: the
    /// pre-clamp hint is attacker-controlled `u32` milliseconds, and an
    /// unclamped floor turned one hostile `Busy` frame into a ~49-day
    /// sleep.
    fn hint_floor(&self, hint_ms: u32) -> Duration {
        Duration::from_millis(u64::from(hint_ms)).min(self.cap)
    }

    /// The deterministic (pre-jitter) backoff for attempt `attempt` given
    /// a server hint: `max(min(base · 2^attempt, cap), min(hint, cap))`.
    ///
    /// Monotone non-decreasing in `attempt`, never above
    /// [`cap`](Self::cap), and floored at the capped hint — the
    /// properties the regression suite pins. The sleep actually taken by
    /// [`Client::call_with_retry`] scales the exponential part by a
    /// jitter in `[0.5, 1.0]`, which can only stay at or below this
    /// value (and never below the hint floor).
    pub fn step(&self, attempt: u32, hint_ms: u32) -> Duration {
        self.exp_step(attempt).max(self.hint_floor(hint_ms))
    }

    /// The jittered backoff before retrying attempt `attempt` (0-based),
    /// honoring the server's `retry_after_ms` hint as a floor up to the
    /// cap.
    fn backoff(&self, attempt: u32, hint_ms: u32, rng: &mut StdRng) -> Duration {
        let jittered = self.exp_step(attempt).mul_f64(0.5 + 0.5 * rng.gen::<f64>());
        jittered.max(self.hint_floor(hint_ms))
    }
}

#[cfg(test)]
mod retry_policy_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// At every attempt count and for every hint — including hints
        /// far beyond the cap — the deterministic step is monotone
        /// non-decreasing in the attempt, never above `cap`, and floored
        /// at `min(hint, cap)`; the jittered sleep obeys the same bounds
        /// and can only shrink the exponential part.
        #[test]
        fn backoff_is_monotone_capped_and_hint_floored(
            base_ms in 1u64..50,
            cap_ms in 1u64..5_000,
            hint_ms in 0u32..u32::MAX,
            seed in 0u64..1_000,
        ) {
            let policy = RetryPolicy {
                max_attempts: 8,
                base: Duration::from_millis(base_ms),
                cap: Duration::from_millis(cap_ms),
                seed,
            };
            let floor = Duration::from_millis(u64::from(hint_ms)).min(policy.cap);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut prev = Duration::ZERO;
            for attempt in 0..40u32 {
                let step = policy.step(attempt, hint_ms);
                prop_assert!(
                    step <= policy.cap,
                    "attempt {}: step {:?} above cap {:?}", attempt, step, policy.cap
                );
                prop_assert!(
                    step >= floor,
                    "attempt {}: step {:?} below hint floor {:?}", attempt, step, floor
                );
                prop_assert!(
                    step >= prev,
                    "attempt {}: step {:?} not monotone (prev {:?})", attempt, step, prev
                );
                prev = step;

                let slept = policy.backoff(attempt, hint_ms, &mut rng);
                prop_assert!(slept <= policy.cap, "sleep {:?} above cap {:?}", slept, policy.cap);
                prop_assert!(slept >= floor, "sleep {:?} below hint floor {:?}", slept, floor);
                prop_assert!(slept <= step, "jitter may only shrink the step");
            }
        }
    }

    /// Regression for the overflow the audit found: a hostile
    /// `retry_after_ms` of `u32::MAX` used to become the sleep verbatim
    /// (~49.7 days) because the hint floor was applied *after* the cap.
    /// The hint is now clamped through the cap before flooring.
    #[test]
    fn hostile_retry_hint_cannot_exceed_cap() {
        let policy = RetryPolicy::default();
        let mut rng = StdRng::seed_from_u64(1);
        for attempt in 0..40 {
            let slept = policy.backoff(attempt, u32::MAX, &mut rng);
            assert!(
                slept <= policy.cap,
                "attempt {attempt}: hostile hint slept {slept:?}, cap {:?}",
                policy.cap
            );
            assert_eq!(policy.step(attempt, u32::MAX), policy.cap);
        }
    }

    /// The shift in the exponential step saturates instead of
    /// overflowing once `2^attempt` no longer fits: attempts beyond 16
    /// keep returning the same capped step.
    #[test]
    fn deep_attempt_counts_saturate() {
        let policy = RetryPolicy::default();
        let deep = policy.step(16, 0);
        for attempt in 17..64 {
            assert_eq!(policy.step(attempt, 0), deep);
        }
        assert_eq!(policy.step(u32::MAX, 0), deep);
    }
}

/// A blocking, single-connection client.
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    buf: Vec<u8>,
    frame: Vec<u8>,
    next_id: u64,
    max_body: usize,
}

/// A successful prediction as seen by a client.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientPrediction {
    /// The predicted class.
    pub class: usize,
    /// Class probabilities.
    pub probabilities: Vec<f64>,
    /// Content digest of the model that served.
    pub digest: u64,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServerError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(Client {
            reader: stream,
            writer,
            buf: Vec::new(),
            frame: Vec::new(),
            next_id: 1,
            max_body: DEFAULT_MAX_BODY,
        })
    }

    /// Applies a read/write timeout to the connection (`None` blocks
    /// forever, the default). With a timeout set, a hung server surfaces
    /// as a transport error instead of wedging the calling thread — the
    /// chaos soak runs every client this way.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if the socket options cannot be set.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ServerError> {
        self.reader.set_read_timeout(timeout)?;
        self.reader.set_write_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request and blocks for its response (raw form — exposes
    /// every status).
    ///
    /// # Errors
    ///
    /// Transport or framing failures, or
    /// [`ServerError::UnexpectedResponse`] if the server answers with a
    /// different request id.
    pub fn request(&mut self, series: &Matrix, digest_pin: u64) -> Result<Response, ServerError> {
        let request_id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        let req = Request {
            request_id,
            digest_pin,
            series: series.clone(),
        };
        crate::frame::encode_request(&req, &mut self.frame);
        self.writer.write_all(&self.frame)?;
        self.writer.flush()?;
        // A clean close before the response is a transport condition
        // (the peer hung up), not a protocol violation — surface it as
        // an IO error so retry layers can classify it uniformly with
        // resets and timeouts.
        let body =
            read_frame(&mut self.reader, &mut self.buf, self.max_body)?.ok_or_else(|| {
                ServerError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before the response",
                ))
            })?;
        let resp = decode_response(body)?;
        if resp.request_id != request_id {
            return Err(ServerError::UnexpectedResponse {
                detail: format!(
                    "response id {} for request id {request_id}",
                    resp.request_id
                ),
            });
        }
        Ok(resp)
    }

    /// Predicts against the server's **active** model.
    ///
    /// # Errors
    ///
    /// [`ServerError::Rejected`] carrying the status (and retry hint, for
    /// `Busy`) on any non-`Ok` response; transport/framing errors
    /// otherwise.
    pub fn predict(&mut self, series: &Matrix) -> Result<ClientPrediction, ServerError> {
        self.predict_pinned(series, 0)
    }

    /// Predicts against a specific registered model (`digest_pin != 0`),
    /// or the active one (`digest_pin == 0`).
    ///
    /// # Errors
    ///
    /// As [`Client::predict`]; an unregistered pin surfaces as
    /// [`ServerError::Rejected`] with [`Status::UnknownDigest`].
    pub fn predict_pinned(
        &mut self,
        series: &Matrix,
        digest_pin: u64,
    ) -> Result<ClientPrediction, ServerError> {
        let resp = self.request(series, digest_pin)?;
        if resp.status != Status::Ok {
            return Err(ServerError::Rejected {
                status: resp.status,
                retry_after_ms: resp.retry_after_ms,
            });
        }
        Ok(ClientPrediction {
            class: resp.class as usize,
            probabilities: resp.probabilities,
            digest: resp.digest,
        })
    }

    /// [`predict_pinned`](Self::predict_pinned) with `Busy` handled: on a
    /// `Busy` rejection the call sleeps per `policy` (jittered
    /// exponential backoff, floored at the server's `retry_after_ms`
    /// hint) and retries, up to [`RetryPolicy::max_attempts`]. Returns
    /// the prediction plus how many `Busy` rejections were absorbed.
    ///
    /// Only `Busy` is retried. Every other rejection is typed and final
    /// for this request (`UnknownDigest`, `Malformed`, `ShuttingDown`,
    /// `PredictFailed`, `Internal`), and transport errors are returned
    /// immediately — the connection state is unknown, so reconnecting is
    /// the caller's decision, not this method's.
    ///
    /// # Errors
    ///
    /// The final [`ServerError::Rejected`] when attempts run out, or any
    /// non-`Busy` error as soon as it happens.
    pub fn call_with_retry(
        &mut self,
        series: &Matrix,
        digest_pin: u64,
        policy: &RetryPolicy,
    ) -> Result<(ClientPrediction, u32), ServerError> {
        // Mix the request id into the seed so concurrent clients sharing
        // a policy (and one client's successive calls) jitter apart.
        let mut rng =
            StdRng::seed_from_u64(policy.seed ^ self.next_id.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut busy_retries = 0u32;
        loop {
            match self.predict_pinned(series, digest_pin) {
                Ok(prediction) => return Ok((prediction, busy_retries)),
                Err(ServerError::Rejected {
                    status: Status::Busy,
                    retry_after_ms,
                }) if busy_retries + 1 < policy.max_attempts.max(1) => {
                    std::thread::sleep(policy.backoff(busy_retries, retry_after_ms, &mut rng));
                    busy_retries += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}
