//! A minimal blocking client for the DFR wire protocol.
//!
//! One [`Client`] owns one connection and issues one request at a time
//! (request ids are still checked, so a desynced server is detected
//! rather than silently mis-paired). Load generators open one client per
//! worker thread.

use crate::error::ServerError;
use crate::frame::{decode_response, read_frame, Request, Response, Status, DEFAULT_MAX_BODY};
use dfr_linalg::Matrix;
use std::io::{BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking, single-connection client.
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    buf: Vec<u8>,
    frame: Vec<u8>,
    next_id: u64,
    max_body: usize,
}

/// A successful prediction as seen by a client.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientPrediction {
    /// The predicted class.
    pub class: usize,
    /// Class probabilities.
    pub probabilities: Vec<f64>,
    /// Content digest of the model that served.
    pub digest: u64,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServerError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(Client {
            reader: stream,
            writer,
            buf: Vec::new(),
            frame: Vec::new(),
            next_id: 1,
            max_body: DEFAULT_MAX_BODY,
        })
    }

    /// Sends one request and blocks for its response (raw form — exposes
    /// every status).
    ///
    /// # Errors
    ///
    /// Transport or framing failures, or
    /// [`ServerError::UnexpectedResponse`] if the server answers with a
    /// different request id.
    pub fn request(&mut self, series: &Matrix, digest_pin: u64) -> Result<Response, ServerError> {
        let request_id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        let req = Request {
            request_id,
            digest_pin,
            series: series.clone(),
        };
        crate::frame::encode_request(&req, &mut self.frame);
        self.writer.write_all(&self.frame)?;
        self.writer.flush()?;
        let body =
            read_frame(&mut self.reader, &mut self.buf, self.max_body)?.ok_or_else(|| {
                ServerError::UnexpectedResponse {
                    detail: "connection closed before the response".into(),
                }
            })?;
        let resp = decode_response(body)?;
        if resp.request_id != request_id {
            return Err(ServerError::UnexpectedResponse {
                detail: format!(
                    "response id {} for request id {request_id}",
                    resp.request_id
                ),
            });
        }
        Ok(resp)
    }

    /// Predicts against the server's **active** model.
    ///
    /// # Errors
    ///
    /// [`ServerError::Rejected`] carrying the status (and retry hint, for
    /// `Busy`) on any non-`Ok` response; transport/framing errors
    /// otherwise.
    pub fn predict(&mut self, series: &Matrix) -> Result<ClientPrediction, ServerError> {
        self.predict_pinned(series, 0)
    }

    /// Predicts against a specific registered model (`digest_pin != 0`),
    /// or the active one (`digest_pin == 0`).
    ///
    /// # Errors
    ///
    /// As [`Client::predict`]; an unregistered pin surfaces as
    /// [`ServerError::Rejected`] with [`Status::UnknownDigest`].
    pub fn predict_pinned(
        &mut self,
        series: &Matrix,
        digest_pin: u64,
    ) -> Result<ClientPrediction, ServerError> {
        let resp = self.request(series, digest_pin)?;
        if resp.status != Status::Ok {
            return Err(ServerError::Rejected {
                status: resp.status,
                retry_after_ms: resp.retry_after_ms,
            });
        }
        Ok(ClientPrediction {
            class: resp.class as usize,
            probabilities: resp.probabilities,
            digest: resp.digest,
        })
    }
}
